"""Code generation: typed AST -> stack bytecode (the lcc-substitute back
end).

The generated code follows lcc's shape (paper Section 3):

* expressions become postfix trees over the evaluation stack;
* every branch target is a ``LABELV`` with an empty evaluation stack, so
  the output always parses under the Appendix-2 grammar — constructs that
  need internal labels (``&&``, ``||``, ``?:``) are *hoisted* into
  temporaries at points where the stack is empty, exactly the flattening a
  tree-based compiler performs;
* direct calls use ``LocalCALL``; address-taken functions get trampolines
  and are reached through the global table (``ADDRGP``; paper Section 3);
* string and floating-point literals live in the data segment and are
  addressed via anonymous global-table entries.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import struct

from ..bytecode.assembler import ProcedureBuilder
from ..bytecode.module import GlobalEntry, Module
from . import ast
from .sema import FunctionInfo, Symbol, analyze
from .types import (
    Array, CHAR, DOUBLE, FLOAT, FuncType, INT, Pointer, SHORT, Struct,
    Type, UCHAR, UINT, USHORT, VOID, is_integer,
)

__all__ = ["CodegenError", "generate"]


class CodegenError(ValueError):
    """Raised for constructs outside the supported subset."""


def _is_word(t: Type) -> bool:
    return is_integer(t) or isinstance(t, (Pointer, FuncType))


def _suffix(t: Type) -> str:
    """Operator type suffix for a computation on values of type t."""
    if t == DOUBLE:
        return "D"
    if t == FLOAT:
        return "F"
    return "U"


class _ModuleBuilder:
    """Data segment, bss, global table, string/const pools."""

    def __init__(self) -> None:
        self.data = bytearray()
        self.bss_size = 0
        self.globals: List[GlobalEntry] = []
        self._bss_entries: List[int] = []   # indices into self.globals
        self._index: Dict[str, int] = {}
        self._strings: Dict[bytes, int] = {}
        self._consts: Dict[Tuple[str, float], int] = {}

    def _add_entry(self, entry: GlobalEntry) -> int:
        index = len(self.globals)
        self.globals.append(entry)
        self._index[entry.name] = index
        return index

    def index_of(self, name: str) -> int:
        return self._index[name]

    def _append_data(self, payload: bytes, alignment: int) -> int:
        while len(self.data) % alignment:
            self.data.append(0)
        offset = len(self.data)
        self.data.extend(payload)
        return offset

    # -- named globals ------------------------------------------------------
    def add_var(self, name: str, ctype: Type, init) -> int:
        if init is None:
            align = 8 if ctype == DOUBLE else 4
            self.bss_size = (self.bss_size + align - 1) & ~(align - 1)
            entry = GlobalEntry("data", name, self.bss_size)
            self.bss_size += max(ctype.size, 1)
            index = self._add_entry(entry)
            self._bss_entries.append(index)
            return index
        return self._add_entry(
            GlobalEntry("data", name,
                        self._append_data(_init_bytes(ctype, init),
                                          8 if ctype == DOUBLE else 4))
        )

    def add_lib(self, name: str) -> int:
        if name in self._index:
            return self._index[name]
        return self._add_entry(GlobalEntry("lib", name))

    def add_proc(self, name: str, proc_index: int) -> int:
        key = f"&{name}"
        if key in self._index:
            return self._index[key]
        return self._add_entry(GlobalEntry("proc", key, proc_index))

    def add_string(self, value: bytes) -> int:
        if value not in self._strings:
            offset = self._append_data(value + b"\0", 1)
            self._strings[value] = self._add_entry(
                GlobalEntry("data", f"__str{len(self._strings)}", offset)
            )
        return self._strings[value]

    def add_const(self, value: float, ctype: Type) -> int:
        key = (_suffix(ctype), float(value))
        if key not in self._consts:
            if ctype == DOUBLE:
                payload = struct.pack("<d", value)
            else:
                payload = struct.pack("<f", value)
            offset = self._append_data(payload, 8 if ctype == DOUBLE else 4)
            self._consts[key] = self._add_entry(
                GlobalEntry(
                    "data",
                    f"__const{len(self._consts)}", offset
                )
            )
        return self._consts[key]

    def finalize(self) -> None:
        """bss symbols live just past the initialized data."""
        base = len(self.data)
        for index in self._bss_entries:
            entry = self.globals[index]
            self.globals[index] = GlobalEntry(
                entry.kind, entry.name, base + entry.value
            )


def _init_bytes(ctype: Type, init) -> bytes:
    """Encode a global initializer into data bytes."""
    if isinstance(init, bytes):
        payload = init + b"\0"
        return payload.ljust(ctype.size, b"\0")
    if isinstance(init, list):
        element = ctype.element
        out = bytearray()
        for v in init:
            out.extend(_scalar_bytes(element, v))
        return bytes(out).ljust(ctype.size, b"\0")
    return _scalar_bytes(ctype, init)


def _scalar_bytes(ctype: Type, value) -> bytes:
    if ctype == DOUBLE:
        return struct.pack("<d", float(value))
    if ctype == FLOAT:
        return struct.pack("<f", float(value))
    pattern = int(value) & 0xFFFFFFFF
    return pattern.to_bytes(4, "little")[: max(ctype.size, 1)]


class _FuncGen:
    """Generates one function body."""

    def __init__(self, module: "_ModuleBuilder", funcs: Dict[str, FunctionInfo],
                 proc_index: Dict[str, int], info: FunctionInfo) -> None:
        self.mb = module
        self.funcs = funcs
        self.proc_index = proc_index
        self.info = info
        self.builder = ProcedureBuilder(
            info.name,
            argsize=info.argsize,
            needs_trampoline=info.address_taken or info.name == "main",
        )
        self._label_n = 0
        self._temp_n = 0
        self._breaks: List[str] = []
        self._continues: List[str] = []

    # -- small helpers ------------------------------------------------------
    def new_label(self) -> str:
        self._label_n += 1
        return f".L{self._label_n}"

    def new_temp(self, ctype: Type) -> Symbol:
        self._temp_n += 1
        return self.info.add_local(f".t{self._temp_n}", ctype)

    def emit(self, opname: str, *operands: int) -> None:
        self.builder.emit(opname, *operands)

    def emit_u16(self, opname: str, value: int) -> None:
        self.builder.emit_u16(opname, value)

    # -- addresses and memory --------------------------------------------------
    def gen_addr(self, expr: ast.Expr) -> None:
        """Push the address of an lvalue."""
        if isinstance(expr, ast.Name):
            sym = expr.symbol
            if sym.kind == "param":
                self.emit_u16("ADDRFP", sym.offset)
            elif sym.kind == "local":
                self.emit_u16("ADDRLP", sym.offset)
            elif sym.kind == "global":
                self.emit_u16("ADDRGP", self.mb.index_of(sym.name))
            else:
                raise CodegenError(f"cannot take address of {sym.kind}")
            return
        if isinstance(expr, ast.Unary) and expr.op == "*":
            self.gen_expr(expr.operand)
            return
        if isinstance(expr, ast.Member):
            if expr.arrow:
                self.gen_expr(expr.base)   # pointer value
            else:
                self.gen_addr(expr.base)   # struct lvalue address
            if expr.field_offset:
                self.gen_int(expr.field_offset)
                self.emit("ADDU")
            return
        if isinstance(expr, ast.Index):
            self.gen_expr(expr.base)
            size = max(expr.ctype.size, 1)
            if isinstance(expr.index, ast.IntLit) or (
                    isinstance(expr.index, ast.Cast)
                    and isinstance(expr.index.operand, ast.IntLit)):
                lit = expr.index if isinstance(expr.index, ast.IntLit) \
                    else expr.index.operand
                self.gen_int(lit.value * size)
            else:
                self.gen_expr(expr.index)
                if size != 1:
                    self.gen_int(size)
                    self.emit("MULU")
            self.emit("ADDU")
            return
        raise CodegenError(f"line {expr.line}: not an lvalue")

    def gen_load(self, ctype: Type) -> None:
        """Address on stack -> value of ``ctype`` on stack."""
        if ctype == CHAR:
            self.emit("INDIRC")
            self.emit("CVI1I4")
        elif ctype == UCHAR:
            self.emit("INDIRC")
        elif ctype == SHORT:
            self.emit("INDIRS")
            self.emit("CVI2I4")
        elif ctype == USHORT:
            self.emit("INDIRS")
        elif ctype == FLOAT:
            self.emit("INDIRF")
        elif ctype == DOUBLE:
            self.emit("INDIRD")
        elif _is_word(ctype):
            self.emit("INDIRU")
        else:
            raise CodegenError(f"cannot load a value of type {ctype}")

    def gen_store(self, ctype: Type) -> None:
        """Address and value on stack -> stored."""
        if ctype in (CHAR, UCHAR):
            self.emit("ASGNC")
        elif ctype in (SHORT, USHORT):
            self.emit("ASGNS")
        elif ctype == FLOAT:
            self.emit("ASGNF")
        elif ctype == DOUBLE:
            self.emit("ASGND")
        elif _is_word(ctype):
            self.emit("ASGNU")
        else:
            raise CodegenError(f"cannot store a value of type {ctype}")

    def load_symbol(self, sym: Symbol) -> None:
        if sym.kind == "param":
            self.emit_u16("ADDRFP", sym.offset)
        elif sym.kind == "local":
            self.emit_u16("ADDRLP", sym.offset)
        else:
            self.emit_u16("ADDRGP", self.mb.index_of(sym.name))
        self.gen_load(sym.ctype)

    def store_into_symbol(self, sym: Symbol, gen_value) -> None:
        """Emit address, run gen_value() to push the value, store."""
        if sym.kind == "param":
            self.emit_u16("ADDRFP", sym.offset)
        elif sym.kind == "local":
            self.emit_u16("ADDRLP", sym.offset)
        else:
            self.emit_u16("ADDRGP", self.mb.index_of(sym.name))
        gen_value()
        self.gen_store(sym.ctype)

    # -- constants ----------------------------------------------------------
    def gen_int(self, value: int) -> None:
        pattern = value & 0xFFFFFFFF
        if pattern < 0x100:
            self.emit("LIT1", pattern)
        elif pattern < 0x10000:
            self.emit("LIT2", pattern & 0xFF, pattern >> 8)
        elif pattern < 0x1000000:
            self.emit("LIT3", pattern & 0xFF, (pattern >> 8) & 0xFF,
                      pattern >> 16)
        else:
            self.emit("LIT4", pattern & 0xFF, (pattern >> 8) & 0xFF,
                      (pattern >> 16) & 0xFF, pattern >> 24)

    def gen_float_const(self, value: float, ctype: Type) -> None:
        index = self.mb.add_const(value, ctype)
        self.emit_u16("ADDRGP", index)
        self.emit("INDIRD" if ctype == DOUBLE else "INDIRF")

    # -- expressions: hoisting ----------------------------------------------
    #
    # Two kinds of subexpression cannot be generated with values pending on
    # the evaluation stack:
    #
    # * ``&&``/``||``/``?:``/comma need internal branch targets, and every
    #   LABELV requires an empty stack (Appendix-2 grammar);
    # * calls with arguments emit ARG *statements*, and a statement operator
    #   also requires an empty stack — this is exactly why lcc flattens
    #   nested calls out of expressions.
    #
    # ``hoist`` rewrites an expression at an empty-stack point: offending
    # subtrees are evaluated into fresh temporaries here and now, and the
    # returned expression references the temps instead.

    def _temp_name(self, temp: Symbol, line: int, ctype) -> ast.Name:
        name = ast.Name(line, ctype, temp.name)
        name.symbol = temp
        return name

    def hoist(self, expr: ast.Expr) -> ast.Expr:
        if isinstance(expr, ast.Cond) or (
                isinstance(expr, ast.Binary) and expr.op in ("&&", "||")):
            temp = self.new_temp(expr.ctype)
            self.gen_labelful_into(temp, expr)
            return self._temp_name(temp, expr.line, expr.ctype)
        if isinstance(expr, ast.Binary) and expr.op == "," and \
                expr.ctype != VOID:
            temp = self.new_temp(expr.ctype)
            self.gen_for_effect(expr.left)
            right = self.hoist(expr.right)
            self.store_into_symbol(temp, lambda: self.gen_expr(right))
            return self._temp_name(temp, expr.line, expr.ctype)
        # Children first: inner calls are evaluated (now, stack empty)
        # before the enclosing call's ARGs start.
        for attr in ("operand", "base", "index", "left", "right",
                     "target", "value", "func"):
            child = getattr(expr, attr, None)
            if isinstance(child, ast.Expr):
                setattr(expr, attr, self.hoist(child))
        if isinstance(expr, ast.Call):
            expr.args = [self.hoist(a) for a in expr.args]
            if expr.args and expr.ctype != VOID:
                temp = self.new_temp(expr.ctype)
                self._gen_call_store(
                    expr,
                    lambda: self.emit_u16("ADDRLP", temp.offset),
                    temp.ctype,
                )
                return self._temp_name(temp, expr.line, expr.ctype)
        if isinstance(expr, ast.Assign):
            # ASGN is a statement operator: perform the store now (children
            # were hoisted, so the target is side-effect free) and let the
            # expression read the target back — the stored, converted value.
            self._gen_assign_effect(expr)
            return expr.target
        if isinstance(expr, ast.IncDec):
            if expr.postfix:
                temp = self.new_temp(expr.ctype)
                operand = expr.operand
                self.store_into_symbol(temp, lambda: (
                    self.gen_addr(operand), self.gen_load(operand.ctype)
                ))
                self._gen_incdec_effect(expr)
                return self._temp_name(temp, expr.line, expr.ctype)
            self._gen_incdec_effect(expr)
            return expr.operand
        return expr

    def _gen_call_store(self, call: ast.Call, push_addr, ctype) -> None:
        """[ARG statements][address][call operator][store]: the only
        grammar-legal way to capture a call's value (the ARGs finish as
        statements before the address is pushed)."""
        self._emit_args(call)
        push_addr()
        self._emit_call_operator(call)
        self.gen_store(ctype)

    def gen_labelful_into(self, temp: Symbol, expr: ast.Expr) -> None:
        """Evaluate a ``&&``/``||``/``?:`` into ``temp`` using branches;
        requires (and preserves) an empty evaluation stack."""
        if isinstance(expr, ast.Cond):
            l_true = self.new_label()
            l_false = self.new_label()
            l_end = self.new_label()
            self.gen_branch(expr.cond, l_true, l_false)
            self.builder.here(l_true)
            # Hoist each arm *before* pushing the temp's address, so any
            # nested label-ful construct sees an empty evaluation stack.
            then = self.hoist(expr.then)
            self.store_into_symbol(temp, lambda: self.gen_expr(then))
            self.builder.emit_branch("JUMPV", l_end)
            self.builder.here(l_false)
            other = self.hoist(expr.other)
            self.store_into_symbol(temp, lambda: self.gen_expr(other))
            self.builder.here(l_end)
            return
        # && / ||: temp = 1 on the true path, 0 on the false path.
        l_true = self.new_label()
        l_false = self.new_label()
        l_end = self.new_label()
        self.gen_branch(expr, l_true, l_false)
        self.builder.here(l_true)
        self.store_into_symbol(temp, lambda: self.gen_int(1))
        self.builder.emit_branch("JUMPV", l_end)
        self.builder.here(l_false)
        self.store_into_symbol(temp, lambda: self.gen_int(0))
        self.builder.here(l_end)

    def gen_branch(self, expr: ast.Expr, l_true: str, l_false: str) -> None:
        """Branch on a condition; empty stack before and after."""
        if isinstance(expr, ast.Binary) and expr.op == "&&":
            l_mid = self.new_label()
            self.gen_branch(expr.left, l_mid, l_false)
            self.builder.here(l_mid)
            self.gen_branch(expr.right, l_true, l_false)
            return
        if isinstance(expr, ast.Binary) and expr.op == "||":
            l_mid = self.new_label()
            self.gen_branch(expr.left, l_true, l_mid)
            self.builder.here(l_mid)
            self.gen_branch(expr.right, l_true, l_false)
            return
        if isinstance(expr, ast.Unary) and expr.op == "!":
            self.gen_branch(expr.operand, l_false, l_true)
            return
        expr = self.hoist(expr)
        self.gen_flag(expr)
        self.builder.emit_branch("BrTrue", l_true)
        self.builder.emit_branch("JUMPV", l_false)

    def gen_flag(self, expr: ast.Expr) -> None:
        """Push a 0/1 flag for a (label-free) scalar condition."""
        ctype = expr.ctype
        if ctype in (FLOAT, DOUBLE):
            self.gen_expr(expr)
            self.gen_float_const(0.0, ctype)
            self.emit("NED" if ctype == DOUBLE else "NEF")
            return
        if isinstance(expr, ast.Binary) and expr.op in (
                "==", "!=", "<", ">", "<=", ">="):
            self.gen_expr(expr)  # comparisons already push a flag
            return
        self.gen_expr(expr)
        self.gen_int(0)
        self.emit("NEU")

    # -- expressions: values -------------------------------------------------------
    def gen_expr(self, expr: ast.Expr) -> None:
        """Push the expression's value (label-free subtrees only)."""
        method = getattr(self, "_gen_" + type(expr).__name__, None)
        if method is None:
            raise CodegenError(
                f"line {expr.line}: cannot generate "
                f"{type(expr).__name__}"
            )
        method(expr)

    def _gen_IntLit(self, expr: ast.IntLit) -> None:
        self.gen_int(expr.value)

    def _gen_FloatLit(self, expr: ast.FloatLit) -> None:
        self.gen_float_const(expr.value, expr.ctype)

    def _gen_StrLit(self, expr: ast.StrLit) -> None:
        self.emit_u16("ADDRGP", self.mb.add_string(expr.value))

    def _gen_Name(self, expr: ast.Name) -> None:
        sym = expr.symbol
        if isinstance(sym.ctype, Array):
            self.gen_addr(expr)
            return
        if sym.kind == "func":
            # handled via Cast decay; direct value use is its address
            self._gen_func_address(sym)
            return
        self.load_symbol(sym)

    def _gen_func_address(self, sym: Symbol) -> None:
        info = sym.func
        if not info.defined:
            self.emit_u16("ADDRGP", self.mb.add_lib(sym.name))
        else:
            self.emit_u16(
                "ADDRGP",
                self.mb.add_proc(sym.name, self.proc_index[sym.name]),
            )

    def _gen_Cast(self, expr: ast.Cast) -> None:
        operand = expr.operand
        target = expr.ctype
        if isinstance(operand.ctype, Array):
            self.gen_addr(operand)
            return
        if isinstance(operand.ctype, FuncType):
            self._gen_func_address(operand.symbol)
            return
        self.gen_expr(operand)
        self._gen_convert(operand.ctype, target, expr.line)

    def _gen_convert(self, src: Type, dst: Type, line: int) -> None:
        if src == dst or dst == VOID:
            if dst == VOID and src in (FLOAT, DOUBLE):
                self.emit("POPF" if src == FLOAT else "POPD")
            elif dst == VOID:
                self.emit("POPU")
            return
        src_f = src in (FLOAT, DOUBLE)
        dst_f = dst in (FLOAT, DOUBLE)
        if src_f and dst_f:
            self.emit("CVFD" if src == FLOAT else "CVDF")
            return
        if src_f and not dst_f:
            self.emit("CVFI" if src == FLOAT else "CVDI")
            self._narrow(dst)
            return
        if not src_f and dst_f:
            # NOTE: unsigned sources go through the signed conversion (the
            # ISA has no unsigned-to-float operator); see module docstring.
            self.emit("CVIF" if dst == FLOAT else "CVID")
            return
        self._narrow(dst)

    def _narrow(self, dst: Type) -> None:
        if dst == CHAR:
            self.emit("CVI1I4")
        elif dst == UCHAR:
            self.emit("CVU1U4")
        elif dst == SHORT:
            self.emit("CVI2I4")
        elif dst == USHORT:
            self.emit("CVU2U4")
        # words and pointers: nothing to do

    def _gen_Unary(self, expr: ast.Unary) -> None:
        op = expr.op
        if op == "&":
            operand = expr.operand
            if isinstance(operand, ast.Name) and operand.symbol.kind == \
                    "func":
                self._gen_func_address(operand.symbol)
                return
            self.gen_addr(operand)
            return
        if op == "*":
            self.gen_expr(expr.operand)
            if not isinstance(expr.ctype, (FuncType, Array)):
                self.gen_load(expr.ctype)
            return
        if op == "-":
            self.gen_expr(expr.operand)
            t = expr.ctype
            self.emit("NEGD" if t == DOUBLE else
                      "NEGF" if t == FLOAT else "NEGI")
            return
        if op == "~":
            self.gen_expr(expr.operand)
            self.emit("BCOMU")
            return
        if op == "!":
            self.gen_expr(expr.operand)
            t = expr.operand.ctype
            if t in (FLOAT, DOUBLE):
                self.gen_float_const(0.0, t)
                self.emit("EQD" if t == DOUBLE else "EQF")
            else:
                self.gen_int(0)
                self.emit("EQU")
            return
        raise CodegenError(f"line {expr.line}: unary {op!r}")

    _CMP_SIGNED = {"<": "LTI", ">": "GTI", "<=": "LEI", ">=": "GEI"}
    _CMP_GENERIC = {"==": "EQ", "!=": "NE", "<": "LT", ">": "GT",
                    "<=": "LE", ">=": "GE"}

    def _gen_Binary(self, expr: ast.Binary) -> None:
        op = expr.op
        if op == ",":
            self.gen_for_effect(expr.left)
            self.gen_expr(expr.right)
            return
        if op in ("&&", "||"):
            raise CodegenError(
                f"line {expr.line}: {op} reached gen_expr without hoisting"
            )
        left, right = expr.left, expr.right
        lt, rt = left.ctype, right.ctype
        if op == "-" and isinstance(lt, Pointer) and isinstance(rt, Pointer):
            self.gen_expr(left)
            self.gen_expr(right)
            self.emit("SUBU")
            size = max(lt.pointee.size, 1)
            if size != 1:
                self.gen_int(size)
                self.emit("DIVU")
            return
        if op in ("+", "-") and isinstance(lt, Pointer) and _is_word(rt):
            self.gen_expr(left)
            self.gen_expr(right)
            size = max(lt.pointee.size, 1)
            if size != 1:
                self.gen_int(size)
                self.emit("MULU")
            self.emit("ADDU" if op == "+" else "SUBU")
            return
        if op == "+" and isinstance(rt, Pointer):
            self.gen_expr(left)
            size = max(rt.pointee.size, 1)
            if size != 1:
                self.gen_int(size)
                self.emit("MULU")
            self.gen_expr(right)
            self.emit("ADDU")
            return
        self.gen_expr(left)
        self.gen_expr(right)
        common = left.ctype
        if op in ("==", "!=", "<", ">", "<=", ">="):
            if common == INT and op in self._CMP_SIGNED:
                self.emit(self._CMP_SIGNED[op])
            else:
                self.emit(self._CMP_GENERIC[op] + _suffix(common))
            return
        if op == "+":
            self.emit("ADD" + _suffix(common))
        elif op == "-":
            self.emit("SUB" + _suffix(common))
        elif op == "*":
            if common == INT:
                self.emit("MULI")
            elif common == UINT or _is_word(common):
                self.emit("MULU")
            else:
                self.emit("MUL" + _suffix(common))
        elif op == "/":
            if common == INT:
                self.emit("DIVI")
            elif _is_word(common):
                self.emit("DIVU")
            else:
                self.emit("DIV" + _suffix(common))
        elif op == "%":
            self.emit("MODI" if common == INT else "MODU")
        elif op == "&":
            self.emit("BANDU")
        elif op == "|":
            self.emit("BORU")
        elif op == "^":
            self.emit("BXORU")
        elif op == "<<":
            self.emit("LSHI" if common == INT else "LSHU")
        elif op == ">>":
            self.emit("RSHI" if common == INT else "RSHU")
        else:
            raise CodegenError(f"line {expr.line}: operator {op!r}")

    def _gen_assign_effect(self, expr: ast.Assign) -> None:
        self.gen_addr(expr.target)
        self.gen_expr(expr.value)
        self.gen_store(expr.target.ctype)

    def _gen_incdec_effect(self, expr: ast.IncDec) -> None:
        ctype = expr.operand.ctype
        if ctype in (FLOAT, DOUBLE):
            raise CodegenError(
                f"line {expr.line}: ++/-- on floating types is not in the "
                f"mini-C subset"
            )
        step = max(ctype.pointee.size, 1) if isinstance(ctype, Pointer) \
            else 1
        self.gen_addr(expr.operand)
        self.gen_addr(expr.operand)
        self.gen_load(ctype)
        self.gen_int(step)
        self.emit("ADDU" if expr.op == "++" else "SUBU")
        self.gen_store(ctype)

    # -- calls ---------------------------------------------------------------
    def _emit_args(self, call: ast.Call) -> None:
        """ARG each argument, first to last.  Each ARG is a complete
        statement, so the evaluation stack must be empty on entry; callers
        guarantee that (hoisting)."""
        for arg in call.args:
            self.gen_expr(arg)
            t = arg.ctype
            if t == DOUBLE:
                self.emit("ARGD")
            elif t == FLOAT:
                self.emit("ARGF")
            else:
                self.emit("ARGU")

    def _emit_call_operator(self, call: ast.Call):
        """Emit just the call operator (args already pushed); returns the
        return type.  Pushes the result for non-void calls."""
        func = call.func
        if isinstance(func, ast.Name) and func.symbol.kind == "func":
            info = func.symbol.func
            ret = info.ctype.ret
            if info.defined:
                self.emit_u16(
                    "LocalCALL" + self._call_suffix(ret),
                    self.proc_index[func.name],
                )
            else:  # library routine: through the global table
                self.emit_u16("ADDRGP", self.mb.add_lib(func.name))
                self.emit("CALL" + self._call_suffix(ret))
            return ret
        ftype = func.ctype
        if isinstance(ftype, Pointer):
            ftype = ftype.pointee
        ret = ftype.ret
        self.gen_expr(func)
        self.emit("CALL" + self._call_suffix(ret))
        return ret

    def _gen_Call(self, expr: ast.Call) -> None:
        # Value position.  Calls *with* arguments were hoisted into temps
        # (their ARGs are statements); only argument-less calls are legal
        # inline, and those can appear anywhere a leaf can.
        if expr.args:
            raise CodegenError(
                f"line {expr.line}: call with arguments reached gen_expr "
                f"without hoisting (internal error)"
            )
        self._emit_call_operator(expr)

    @staticmethod
    def _call_suffix(ret: Type) -> str:
        if ret == VOID:
            return "V"
        if ret == DOUBLE:
            return "D"
        if ret == FLOAT:
            return "F"
        return "U"

    def _gen_Index(self, expr: ast.Index) -> None:
        self.gen_addr(expr)
        if not isinstance(expr.ctype, (Array, Struct)):
            self.gen_load(expr.ctype)

    def _gen_Member(self, expr: ast.Member) -> None:
        self.gen_addr(expr)
        if not isinstance(expr.ctype, (Array, Struct)):
            self.gen_load(expr.ctype)

    # -- statements -----------------------------------------------------------------
    def _pop_value(self, ctype: Type) -> None:
        if ctype == DOUBLE:
            self.emit("POPD")
        elif ctype == FLOAT:
            self.emit("POPF")
        elif ctype != VOID:
            self.emit("POPU")

    def gen_for_effect(self, expr: ast.Expr) -> None:
        """Evaluate for side effects; requires and leaves an empty stack."""
        if isinstance(expr, ast.Binary) and expr.op == ",":
            self.gen_for_effect(expr.left)
            self.gen_for_effect(expr.right)
            return
        if isinstance(expr, ast.Cast) and expr.ctype == VOID:
            self.gen_for_effect(expr.operand)
            return
        if isinstance(expr, ast.Call):
            # Direct emission: ARG statements run here, at an empty stack.
            expr.args = [self.hoist(a) for a in expr.args]
            expr.func = self.hoist(expr.func)
            self._emit_args(expr)
            ret = self._emit_call_operator(expr)
            self._pop_value(ret)
            return
        if isinstance(expr, ast.Assign):
            expr.target = self.hoist(expr.target)
            value = expr.value
            if expr.op == "=" and isinstance(value, ast.Call) and value.args:
                # x = f(...): ARGs as statements, then [addr][call][store].
                value.args = [self.hoist(a) for a in value.args]
                value.func = self.hoist(value.func)
                self._gen_call_store(
                    value,
                    lambda: self.gen_addr(expr.target),
                    expr.target.ctype,
                )
                return
            expr.value = self.hoist(value)
            self._gen_assign_effect(expr)
            return
        if isinstance(expr, ast.IncDec):
            expr.operand = self.hoist(expr.operand)
            self._gen_incdec_effect(expr)
            return
        if isinstance(expr, (ast.Name, ast.IntLit, ast.FloatLit,
                             ast.StrLit)):
            return  # pure, no effect
        expr = self.hoist(expr)
        self.gen_expr(expr)
        self._pop_value(expr.ctype)

    def gen_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Block):
            for s in stmt.body:
                self.gen_stmt(s)
        elif isinstance(stmt, ast.ExprStmt):
            if stmt.expr is not None:
                self.gen_for_effect(stmt.expr)
        elif isinstance(stmt, ast.LocalDecl):
            if stmt.init is not None:
                init = stmt.init
                if isinstance(init, ast.Call) and init.args:
                    init.args = [self.hoist(a) for a in init.args]
                    init.func = self.hoist(init.func)
                    sym = stmt.symbol
                    self._gen_call_store(
                        init,
                        lambda: self.emit_u16("ADDRLP", sym.offset),
                        sym.ctype,
                    )
                else:
                    init = self.hoist(init)
                    self.store_into_symbol(stmt.symbol,
                                           lambda: self.gen_expr(init))
        elif isinstance(stmt, ast.If):
            l_then = self.new_label()
            l_else = self.new_label()
            self.gen_branch(stmt.cond, l_then, l_else)
            self.builder.here(l_then)
            self.gen_stmt(stmt.then)
            if stmt.other is not None:
                l_end = self.new_label()
                self.builder.emit_branch("JUMPV", l_end)
                self.builder.here(l_else)
                self.gen_stmt(stmt.other)
                self.builder.here(l_end)
            else:
                self.builder.here(l_else)
        elif isinstance(stmt, ast.While):
            l_top = self.new_label()
            l_body = self.new_label()
            l_end = self.new_label()
            self.builder.here(l_top)
            self._breaks.append(l_end)
            self._continues.append(l_top)
            self.gen_branch(stmt.cond, l_body, l_end)
            self.builder.here(l_body)
            self.gen_stmt(stmt.body)
            self.builder.emit_branch("JUMPV", l_top)
            self.builder.here(l_end)
            self._breaks.pop()
            self._continues.pop()
        elif isinstance(stmt, ast.DoWhile):
            l_top = self.new_label()
            l_cond = self.new_label()
            l_end = self.new_label()
            self.builder.here(l_top)
            self._breaks.append(l_end)
            self._continues.append(l_cond)
            self.gen_stmt(stmt.body)
            self.builder.here(l_cond)
            self.gen_branch(stmt.cond, l_top, l_end)
            self.builder.here(l_end)
            self._breaks.pop()
            self._continues.pop()
        elif isinstance(stmt, ast.For):
            l_top = self.new_label()
            l_body = self.new_label()
            l_step = self.new_label()
            l_end = self.new_label()
            if stmt.init is not None:
                self.gen_for_effect(stmt.init)
            self.builder.here(l_top)
            self._breaks.append(l_end)
            self._continues.append(l_step)
            if stmt.cond is not None:
                self.gen_branch(stmt.cond, l_body, l_end)
                self.builder.here(l_body)
            self.gen_stmt(stmt.body)
            self.builder.here(l_step)
            if stmt.step is not None:
                self.gen_for_effect(stmt.step)
            self.builder.emit_branch("JUMPV", l_top)
            self.builder.here(l_end)
            self._breaks.pop()
            self._continues.pop()
        elif isinstance(stmt, ast.Switch):
            self._gen_switch(stmt)
        elif isinstance(stmt, ast.Return):
            ret = self.info.ctype.ret
            if stmt.value is None:
                self.emit("RETV")
            elif isinstance(stmt.value, ast.Call) and stmt.value.args:
                # return f(...): ARG statements, then [call][RET] directly.
                call = stmt.value
                call.args = [self.hoist(a) for a in call.args]
                call.func = self.hoist(call.func)
                self._emit_args(call)
                self._emit_call_operator(call)
                self.emit("RET" + self._call_suffix(ret))
            else:
                value = self.hoist(stmt.value)
                self.gen_expr(value)
                self.emit("RET" + self._call_suffix(ret))
        elif isinstance(stmt, ast.Break):
            self.builder.emit_branch("JUMPV", self._breaks[-1])
        elif isinstance(stmt, ast.Continue):
            self.builder.emit_branch("JUMPV", self._continues[-1])
        else:  # pragma: no cover
            raise CodegenError(f"unhandled statement {type(stmt).__name__}")

    def _gen_switch(self, stmt: ast.Switch) -> None:
        """Lower a switch to a binary decision tree over the case values —
        the lcc option the paper's evaluation used ("compiles switches
        into decision trees, because the current implementation of the
        bytecode cannot handle indirect jumps")."""
        l_end = self.new_label()
        l_default = self.new_label()
        cases = []          # (value, label)
        has_default = False
        for item in stmt.body:
            if isinstance(item, ast.CaseLabel):
                if item.value is None:
                    has_default = True
                else:
                    cases.append((item.value, self.new_label()))

        # Evaluate the controlling expression once, into a temp.
        temp = self.new_temp(stmt.cond.ctype)
        cond = self.hoist(stmt.cond)
        self.store_into_symbol(temp, lambda: self.gen_expr(cond))

        # Dispatch: binary search over the sorted case values.
        signed = stmt.cond.ctype == INT
        by_value = dict(cases)
        # Sort in the comparison domain the dispatch uses (LTI vs LTU),
        # so negative case values order correctly either way.
        domain = (lambda v: v) if signed else (lambda v: v & 0xFFFFFFFF)
        sorted_values = sorted(by_value, key=domain)

        def emit_tree(values):
            if len(values) <= 3:
                for v in values:
                    self.load_symbol(temp)
                    self.gen_int(v)
                    self.emit("EQU")
                    self.builder.emit_branch("BrTrue", by_value[v])
                self.builder.emit_branch(
                    "JUMPV", l_default if has_default else l_end
                )
                return
            mid = len(values) // 2
            l_low = self.new_label()
            self.load_symbol(temp)
            self.gen_int(values[mid])
            self.emit("LTI" if signed else "LTU")
            self.builder.emit_branch("BrTrue", l_low)
            emit_tree(values[mid:])
            self.builder.here(l_low)
            emit_tree(values[:mid])

        emit_tree(sorted_values)

        # Body: statements in order, labels at case positions
        # (fallthrough is just sequential execution).
        case_iter = iter(cases)
        self._breaks.append(l_end)
        try:
            for item in stmt.body:
                if isinstance(item, ast.CaseLabel):
                    if item.value is None:
                        self.builder.here(l_default)
                    else:
                        self.builder.here(next(case_iter)[1])
                else:
                    self.gen_stmt(item)
        finally:
            self._breaks.pop()
        if not has_default:
            pass  # no-case path jumped straight to l_end
        self.builder.here(l_end)

    def generate(self, body: ast.Block):
        self.gen_stmt(body)
        # Defensive epilogue: C says falling off the end of a non-void
        # function is undefined; we return 0/0.0.
        ret = self.info.ctype.ret
        if ret == VOID:
            self.emit("RETV")
        elif ret in (FLOAT, DOUBLE):
            self.gen_float_const(0.0, ret)
            self.emit("RETD" if ret == DOUBLE else "RETF")
        else:
            self.gen_int(0)
            self.emit("RETU")
        self.builder.framesize = self.info.framesize
        return self.builder.finish()


def generate(unit: ast.TranslationUnit) -> Module:
    """Sema + codegen: typed AST in, complete Module out."""
    functions = analyze(unit)

    mb = _ModuleBuilder()
    for item in unit.items:
        if isinstance(item, ast.GlobalDecl):
            mb.add_var(item.name, item.ctype, item.init)

    defined = [item for item in unit.items
               if isinstance(item, ast.FuncDef) and item.body is not None]
    proc_index = {item.name: i for i, item in enumerate(defined)}

    procedures = []
    for item in defined:
        gen = _FuncGen(mb, functions, proc_index, functions[item.name])
        procedures.append((gen, item.body))

    module = Module()
    for gen, body in procedures:
        module.procedures.append(gen.generate(body))
    mb.finalize()
    module.globals = mb.globals
    module.data = bytes(mb.data)
    module.bss_size = mb.bss_size
    if "main" in proc_index:
        module.entry = proc_index["main"]
    return module
