"""Abstract syntax for mini-C.

Plain dataclasses; types are attached by :mod:`repro.minic.sema` (the
``ctype`` attribute on expressions).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

__all__ = [
    "Node", "Expr", "Stmt",
    "IntLit", "FloatLit", "StrLit", "Name",
    "Unary", "Binary", "Assign", "Cond", "Call", "Index", "Cast",
    "IncDec", "SizeOf", "Member",
    "ExprStmt", "Block", "If", "While", "DoWhile", "For", "Return",
    "Break", "Continue", "LocalDecl", "Switch", "CaseLabel",
    "Param", "FuncDef", "GlobalDecl", "TranslationUnit",
]


@dataclass
class Node:
    line: int = 0


@dataclass
class Expr(Node):
    """Base of all expressions; ``ctype`` is set by sema."""

    ctype: object = None


@dataclass
class IntLit(Expr):
    value: int = 0
    unsigned: bool = False


@dataclass
class FloatLit(Expr):
    value: float = 0.0
    single: bool = False  # 'f' suffix


@dataclass
class StrLit(Expr):
    value: bytes = b""


@dataclass
class Name(Expr):
    name: str = ""
    symbol: object = None  # bound by sema


@dataclass
class Unary(Expr):
    """op in - ! ~ * & (plus unary +, dropped by the parser)."""

    op: str = ""
    operand: Expr = None


@dataclass
class Binary(Expr):
    op: str = ""
    left: Expr = None
    right: Expr = None


@dataclass
class Assign(Expr):
    """op is '=' or a compound '+=' etc."""

    op: str = "="
    target: Expr = None
    value: Expr = None


@dataclass
class Cond(Expr):
    cond: Expr = None
    then: Expr = None
    other: Expr = None


@dataclass
class Call(Expr):
    func: Expr = None
    args: List[Expr] = field(default_factory=list)


@dataclass
class Index(Expr):
    base: Expr = None
    index: Expr = None


@dataclass
class Cast(Expr):
    target_type: object = None
    operand: Expr = None


@dataclass
class Member(Expr):
    """``base.name`` (arrow=False) or ``base->name`` (arrow=True)."""

    base: Expr = None
    name: str = ""
    arrow: bool = False
    field_type: object = None   # set by sema
    field_offset: int = 0       # set by sema


@dataclass
class IncDec(Expr):
    """++/-- in prefix or postfix position."""

    op: str = "++"
    operand: Expr = None
    postfix: bool = False


@dataclass
class SizeOf(Expr):
    target_type: object = None


# -- statements ---------------------------------------------------------------

@dataclass
class Stmt(Node):
    pass


@dataclass
class ExprStmt(Stmt):
    expr: Optional[Expr] = None  # None = empty statement


@dataclass
class Block(Stmt):
    body: List[Stmt] = field(default_factory=list)


@dataclass
class If(Stmt):
    cond: Expr = None
    then: Stmt = None
    other: Optional[Stmt] = None


@dataclass
class While(Stmt):
    cond: Expr = None
    body: Stmt = None


@dataclass
class DoWhile(Stmt):
    body: Stmt = None
    cond: Expr = None


@dataclass
class For(Stmt):
    init: Optional[Expr] = None
    cond: Optional[Expr] = None
    step: Optional[Expr] = None
    body: Stmt = None


@dataclass
class CaseLabel(Stmt):
    """``case N:`` (value set) or ``default:`` (value None) inside a
    switch body; a position marker, not an executable statement."""

    value: Optional[int] = None


@dataclass
class Switch(Stmt):
    """C switch with fallthrough: the body is a statement list in which
    CaseLabel markers name the dispatch targets."""

    cond: Expr = None
    body: List[Stmt] = field(default_factory=list)


@dataclass
class Return(Stmt):
    value: Optional[Expr] = None


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


@dataclass
class LocalDecl(Stmt):
    ctype: object = None
    name: str = ""
    init: Optional[Expr] = None
    symbol: object = None  # bound by sema


# -- top level ----------------------------------------------------------------

@dataclass
class Param(Node):
    ctype: object = None
    name: str = ""


@dataclass
class FuncDef(Node):
    ret: object = None
    name: str = ""
    params: List[Param] = field(default_factory=list)
    body: Optional[Block] = None  # None = declaration only


@dataclass
class GlobalDecl(Node):
    ctype: object = None
    name: str = ""
    init: object = None  # int/float value, bytes, or list of values
    is_extern_lib: bool = False


@dataclass
class TranslationUnit(Node):
    items: List[Node] = field(default_factory=list)
