"""MR-RePair-style maximal-repeat grammar seeding.

Classic RePair replaces the single most frequent *pair* per step; MR-RePair
(Furuya et al.) and practical RePair variants (Bille et al.) observe that
when a whole maximal repeat recurs, replacing it in one step produces the
same grammar with far fewer rounds and no cascade of throwaway
intermediate rules.  This module lifts that idea from strings to the
training forest:

* a *shape* is a complete subtree of the forest in which every
  ``<byte>``-rooted child is abstracted into a hole.  Because a complete
  subtree's terminal yield is one contiguous substring of the flattened
  bytecode stream, shapes are exactly the repeats of the corpus that a
  single grammar rule can capture — a shape occurring ``k`` times is a
  maximal repeat with ``k`` (non-overlapping) occurrences;
* one *round* hash-conses every node's shape in a single postorder pass,
  ranks repeated shapes by saved derivation steps
  (``count * (nodes - 1)``), and greedily claims and contracts
  non-overlapping occurrences, adding one rule per distinct shape;
* contracted nodes become units of the next round, so repeats *of
  repeats* seed on later rounds, until a round contracts nothing.

Seeded rules splice their constituent rules' right-hand sides together,
so their RHS contains only operators and ``<byte>`` nonterminals (every
non-byte child is inlined away); their fragments are built over original
rule ids only, which keeps them serializable (RGR1) and tileable by the
compressor exactly like greedily-inlined rules.  The per-nonterminal
seed budget (``budget_frac`` of the remaining 256-rule capacity) is what
the hybrid strategy uses to leave the profiled greedy expander room to
refine — e.g. to burn frequent literals into the seeded holes.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple

from ..grammar.cfg import Grammar, is_nonterminal
from ..parsing.forest import Forest, Node
from .strategy import (
    SeedReport,
    TrainerStrategy,
    _greedy_refine,
    register_strategy,
)

__all__ = ["repair_seed", "RepairStrategy", "HybridStrategy"]

#: the interned key id of a hole (a ``<byte>``-rooted subtree)
_HOLE = 0


def _span_and_holes(node: Node, rules, byte_nt: int
                    ) -> Tuple[List[Node], List[Node]]:
    """The non-hole nodes of ``node``'s subtree (preorder) and its
    ``<byte>``-rooted frontier children in left-to-right order."""
    span: List[Node] = []
    holes: List[Node] = []
    stack = [node]
    while stack:
        n = stack.pop()
        if rules[n.rule_id].lhs == byte_nt:
            holes.append(n)
            continue
        span.append(n)
        stack.extend(reversed(n.children))
    return span, holes


def _fill_frontier(fragment, subs):
    """Replace the holes of ``fragment`` (left-to-right frontier order)
    with ``subs``; a ``None`` sub keeps its hole.

    Recursion depth is bounded by the seeded-shape size cap
    (``max_rule_symbols``), never by forest spines — seeded fragments
    stay well inside both the recursion limit and the recursive
    fragment machinery in :mod:`repro.grammar.cfg`.
    """
    it = iter(subs)

    def go(frag):
        rule_id, children = frag
        return (rule_id, tuple(
            next(it) if child is None else go(child)
            for child in children))

    out = go(fragment)
    leftover = sum(1 for _ in it)
    if leftover:
        raise ValueError(f"{leftover} unplaced fragment substitution(s)")
    return out


def _materialize(k: int, rules, krule, kids, rhs_cache, frag_cache,
                 limit: int):
    """The RHS and fragment a rule for shape ``k`` would have, or
    ``(None, None)`` when the spliced RHS exceeds ``limit`` symbols
    (rules must stay compact-encodable: bodies are length-prefixed with
    one byte).  Iterative over the shape DAG; memoized across shapes."""
    stack = [k]
    while stack:
        cur = stack[-1]
        if cur in rhs_cache:
            stack.pop()
            continue
        pending = [c for c in kids[cur]
                   if c != _HOLE and c not in rhs_cache]
        if pending:
            stack.extend(pending)
            continue
        stack.pop()
        rule = rules[krule[cur]]
        rhs: List[int] = []
        ok = True
        child_i = 0
        for sym in rule.rhs:
            if is_nonterminal(sym):
                child = kids[cur][child_i]
                child_i += 1
                if child == _HOLE:
                    rhs.append(sym)  # stays a <byte> hole
                else:
                    sub = rhs_cache[child]
                    if sub is None:
                        ok = False
                        break
                    rhs.extend(sub)
            else:
                rhs.append(sym)
            if len(rhs) > limit:
                ok = False
                break
        if not ok:
            rhs_cache[cur] = None
            frag_cache[cur] = None
            continue
        subs = [None if c == _HOLE else frag_cache[c] for c in kids[cur]]
        rhs_cache[cur] = tuple(rhs)
        frag_cache[cur] = _fill_frontier(rule.fragment, subs)
    return rhs_cache[k], frag_cache[k]


def repair_seed(grammar: Grammar, forest: Forest, *,
                min_count: int = 2,
                max_rounds: int = 8,
                max_rule_symbols: int = 64,
                budget_frac: float = 1.0) -> SeedReport:
    """Seed ``grammar`` with the forest's maximal repeats (in place).

    Args:
        min_count: a shape must occur (contractably) at least this often
            to earn a rule — the same threshold the greedy expander
            applies to edges.
        max_rounds: hard cap on collect-and-contract rounds (each round
            terminates on its own when nothing contracts).
        max_rule_symbols: largest seeded RHS, in symbols.  Caps both the
            encoded rule body (must fit a one-byte length) and the depth
            of seeded fragments.
        budget_frac: fraction of each nonterminal's remaining rule
            capacity (at seed start) the seed phase may consume; the
            rest is left for the refine phase.

    Everything is deterministic: shape ids are assigned in forest
    preorder, ties break toward earlier ids, and the forest itself is
    already identical across parser worker counts.
    """
    byte_nt = grammar.nonterminal("byte")
    rules = grammar.rules
    budget: Dict[int, int] = {
        nt: int((grammar.max_rules_per_nt - grammar.num_rules(nt))
                * budget_frac)
        for nt in grammar.nonterminals
    }
    #: fragment -> seeded rule id, so a shape recurring in a later round
    #: (composed differently) reuses its rule instead of duplicating it
    existing: Dict[tuple, int] = {}
    report = SeedReport()

    for _ in range(max_rounds):
        round_start = time.perf_counter()

        # -- collect: hash-cons every node's shape, one postorder pass --
        intern: Dict[Tuple[int, Tuple[int, ...]], int] = {}
        krule: List[int] = [-1]      # index 0 = the hole pseudo-shape
        kids: List[Tuple[int, ...]] = [()]
        knodes: List[int] = [0]
        klhs: List[int] = [0]
        kocc: List[Optional[List[Node]]] = [None]
        keys: Dict[int, int] = {}    # id(node) -> shape id
        for root in forest:
            stack = [(root, False)]
            while stack:
                node, done = stack.pop()
                if not done:
                    stack.append((node, True))
                    for child in reversed(node.children):
                        stack.append((child, False))
                    continue
                if rules[node.rule_id].lhs == byte_nt:
                    keys[id(node)] = _HOLE
                    continue
                child_keys = tuple(keys[id(c)] for c in node.children)
                sig = (node.rule_id, child_keys)
                k = intern.get(sig)
                if k is None:
                    k = len(krule)
                    intern[sig] = k
                    krule.append(node.rule_id)
                    kids.append(child_keys)
                    knodes.append(1 + sum(knodes[c] for c in child_keys))
                    klhs.append(rules[node.rule_id].lhs)
                    kocc.append([])
                kocc[k].append(node)
                keys[id(node)] = k

        # -- rank: most saved derivation steps first, then count, then
        #    first-seen shape id (all deterministic) --
        candidates = [
            k for k in range(1, len(krule))
            if 2 <= knodes[k] <= max_rule_symbols
            and len(kocc[k]) >= min_count
        ]
        candidates.sort(key=lambda k: (
            -len(kocc[k]) * (knodes[k] - 1), -len(kocc[k]), k))

        # -- claim and contract --
        claimed = set()
        rhs_cache: Dict[int, Optional[tuple]] = {}
        frag_cache: Dict[int, Optional[tuple]] = {}
        round_contractions = 0
        for k in candidates:
            lhs = klhs[k]
            rhs, frag = _materialize(k, rules, krule, kids,
                                     rhs_cache, frag_cache,
                                     max_rule_symbols)
            if rhs is None:
                continue
            rule_id = existing.get(frag)
            if rule_id is None and (budget.get(lhs, 0) <= 0
                                    or not grammar.can_grow(lhs)):
                continue
            # Occurrences whose span is still untouched this round.
            # Same-shape occurrences can never overlap (nesting would
            # change the node count, hence the shape), so claiming after
            # the filter is sound.
            usable = []
            for node in kocc[k]:
                span, holes = _span_and_holes(node, rules, byte_nt)
                if any(id(s) in claimed for s in span):
                    continue
                usable.append((node, span, holes))
            if len(usable) < (min_count if rule_id is None else 1):
                continue
            if rule_id is None:
                rule = grammar.add_rule(lhs, rhs, origin="inlined",
                                        fragment=frag)
                rule_id = rule.id
                existing[frag] = rule_id
                budget[lhs] -= 1
                report.rules_added += 1
            else:
                report.rules_reused += 1
            for node, span, holes in usable:
                for s in span:
                    claimed.add(id(s))
                node.rule_id = rule_id
                node.replace_children(holes)
                round_contractions += len(span) - 1
        report.contractions += round_contractions
        report.rounds += 1
        report.round_seconds.append(time.perf_counter() - round_start)
        if round_contractions == 0:
            break
    return report


@register_strategy
class RepairStrategy(TrainerStrategy):
    """Pure maximal-repeat seeding, no greedy refinement."""

    id = "repair"

    def __init__(self, *, max_rounds: int = 8,
                 max_rule_symbols: int = 64,
                 budget_frac: float = 1.0) -> None:
        self.max_rounds = max_rounds
        self.max_rule_symbols = max_rule_symbols
        self.budget_frac = budget_frac

    def params(self) -> Dict[str, object]:
        return {
            "max_rounds": self.max_rounds,
            "max_rule_symbols": self.max_rule_symbols,
            "budget_frac": self.budget_frac,
        }

    def seed(self, grammar: Grammar, forest: Forest, *,
             min_count: int = 2) -> SeedReport:
        return repair_seed(
            grammar, forest,
            min_count=min_count,
            max_rounds=self.max_rounds,
            max_rule_symbols=self.max_rule_symbols,
            budget_frac=self.budget_frac,
        )


@register_strategy
class HybridStrategy(RepairStrategy):
    """Maximal-repeat seeding, then the profiled greedy expander.

    The default ``budget_frac`` spends a tenth of every nonterminal's
    remaining capacity on seeds and reserves the rest for refinement.
    Measured on the synthetic corpus (EXPERIMENTS.md, S3): seeded
    hole-shapes generalize — hybrid beats pure greedy on every input it
    did NOT train on — while larger seed budgets crowd out the literal
    burning that greedy's profile-driven refinement spends rules on.
    """

    id = "hybrid"

    def __init__(self, *, max_rounds: int = 8,
                 max_rule_symbols: int = 64,
                 budget_frac: float = 0.1) -> None:
        super().__init__(max_rounds=max_rounds,
                         max_rule_symbols=max_rule_symbols,
                         budget_frac=budget_frac)

    def refine(self, grammar: Grammar, forest: Forest, *,
               min_count: int = 2,
               remove_subsumed: bool = True,
               max_iterations: Optional[int] = None,
               index_mode: str = "incremental",
               collect_stats: bool = False):
        return _greedy_refine(
            grammar, forest,
            min_count=min_count,
            remove_subsumed=remove_subsumed,
            max_iterations=max_iterations,
            index_mode=index_mode,
            collect_stats=collect_stats,
        )
