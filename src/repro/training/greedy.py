"""The greedy profiled edge-contraction trainer as a strategy.

This is the paper's original training loop (Section 4.1) ported onto the
:class:`~repro.training.strategy.TrainerStrategy` seam: no seed phase,
refine = :func:`~repro.training.expander.expand_grammar` with untouched
arguments.  The port is *bit-identical* — the frozen pre-refactor loop
(:mod:`repro.training.oracle`) and a 50-seed golden sweep in
``tests/test_trainer_strategies.py`` pin that claim.
"""

from __future__ import annotations

from typing import Optional

from ..grammar.cfg import Grammar
from ..parsing.forest import Forest
from .expander import TrainingReport
from .strategy import TrainerStrategy, _greedy_refine, register_strategy

__all__ = ["GreedyStrategy"]


@register_strategy
class GreedyStrategy(TrainerStrategy):
    """Pure greedy: one most-frequent edge inlined per iteration."""

    id = "greedy"

    def refine(self, grammar: Grammar, forest: Forest, *,
               min_count: int = 2,
               remove_subsumed: bool = True,
               max_iterations: Optional[int] = None,
               index_mode: str = "incremental",
               collect_stats: bool = False) -> TrainingReport:
        return _greedy_refine(
            grammar, forest,
            min_count=min_count,
            remove_subsumed=remove_subsumed,
            max_iterations=max_iterations,
            index_mode=index_mode,
            collect_stats=collect_stats,
        )
