"""Edge counting over parse forests (paper Section 4.1, Figure 2).

An *edge* is a pair of rules, one used to expand a nonterminal on the
right-hand side of the other, identified by

    ``(parent_rule_id, slot, child_rule_id)``

where ``slot`` is the index of the nonterminal occurrence (0-based, counting
only nonterminals) in the parent rule's right-hand side.  Inlining the most
frequent edge and contracting all its occurrences shortens the derivation by
(roughly) the edge's count, so the expander needs fast "what is the most
frequent edge" queries while the forest is being rewritten in place.

Two implementations of that query live here:

* :class:`EdgeIndex` keeps exact counts plus the set of occurrence sites
  (parent nodes), updated incrementally by local deltas around each
  contraction, with a lazy max-heap for the argmax.  A contraction only
  perturbs edges incident to the two affected nodes, so each update is
  O(degree) instead of O(forest).
* :class:`NaiveEdgeIndex` answers every ``best`` query with a from-scratch
  recount of the whole forest (:func:`count_edges_naive`) — the paper's
  literal per-iteration rescan.  It is the *oracle*: training with it must
  pick the same edge under the same tie-break at every step, which the
  tests enforce, and the benchmarks measure the incremental index's
  speedup against it.

Both break frequency ties identically: highest count first, then the
lexicographically smallest ``(parent_rule_id, slot, child_rule_id)`` key,
so training is deterministic run to run and index to index.  Occurrence
sets are insertion-ordered dicts for the same reason.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Optional, Tuple

from ..grammar.cfg import Grammar
from ..parsing.forest import Forest, Node

__all__ = [
    "EdgeKey", "EdgeIndex", "NaiveEdgeIndex", "IndexStats",
    "count_edges", "count_edges_naive",
]

EdgeKey = Tuple[int, int, int]  # (parent_rule_id, slot, child_rule_id)


def count_edges_naive(forest: Forest) -> Dict[EdgeKey, int]:
    """One-shot full recount: O(forest) per call.

    This is the slow reference path — the oracle the incremental index is
    checked against, and the baseline the training-speed benchmarks beat.
    """
    counts: Dict[EdgeKey, int] = {}
    for node in forest.nodes():
        for slot, child in enumerate(node.children):
            key = (node.rule_id, slot, child.rule_id)
            counts[key] = counts.get(key, 0) + 1
    return counts


#: Backwards-compatible alias (the original name of the recount).
count_edges = count_edges_naive


@dataclass
class IndexStats:
    """Bookkeeping counters of one index's life (cheap; always collected).

    ``peeks`` counts ``best()`` heap inspections; ``stale_pops`` counts
    entries discarded because their count was out of date.  The *hit rate*
    (fraction of inspections that were live) is the measure of how lazy the
    heap can afford to be.
    """

    pushes: int = 0
    peeks: int = 0
    stale_pops: int = 0
    filtered_pops: int = 0
    recounts: int = 0  # full-forest recounts (naive index only)

    @property
    def hit_rate(self) -> float:
        if self.peeks == 0:
            return 1.0
        return 1.0 - self.stale_pops / self.peeks


class EdgeIndex:
    """Incrementally-maintained edge counts and occurrence sets."""

    #: subclasses that never consult the heap set this to skip the pushes
    _track_heap = True

    def __init__(self, grammar: Grammar,
                 forest: Optional[Forest] = None) -> None:
        self.grammar = grammar
        self.counts: Dict[EdgeKey, int] = {}
        self.occs: Dict[EdgeKey, Dict[Node, None]] = {}
        self._heap: list = []  # (-count, key), lazily invalidated
        self.stats = IndexStats()
        if forest is not None:
            self.index_forest(forest)

    # -- bulk -------------------------------------------------------------
    def index_forest(self, forest: Forest) -> None:
        for node in forest.nodes():
            self.add_outgoing(node)

    # -- single-edge updates ----------------------------------------------
    def _add(self, parent: Node, slot: int) -> None:
        key = (parent.rule_id, slot, parent.children[slot].rule_id)
        n = self.counts.get(key, 0) + 1
        self.counts[key] = n
        self.occs.setdefault(key, {})[parent] = None
        if self._track_heap:
            heapq.heappush(self._heap, (-n, key))
            self.stats.pushes += 1

    def _remove(self, parent: Node, slot: int) -> None:
        key = (parent.rule_id, slot, parent.children[slot].rule_id)
        n = self.counts[key] - 1
        occ = self.occs[key]
        del occ[parent]
        if n == 0:
            del self.counts[key]
            del self.occs[key]
        else:
            self.counts[key] = n
            # No heap push here.  Decrements outnumber useful queries by
            # orders of magnitude, so ``best`` repairs lazily instead: when
            # it pops a stale entry whose live count has fallen *below* the
            # entry, it pushes one corrected entry, keeping every live
            # key's largest heap entry >= its live count.

    # -- node-level updates -------------------------------------------------
    def add_outgoing(self, node: Node) -> None:
        for slot in range(len(node.children)):
            self._add(node, slot)

    def remove_outgoing(self, node: Node) -> None:
        for slot in range(len(node.children)):
            self._remove(node, slot)

    def add_parent_edge(self, node: Node) -> None:
        if node.parent is not None:
            self._add(node.parent, node.pindex)

    def remove_parent_edge(self, node: Node) -> None:
        if node.parent is not None:
            self._remove(node.parent, node.pindex)

    # -- queries -------------------------------------------------------------
    def count(self, key: EdgeKey) -> int:
        return self.counts.get(key, 0)

    def occurrences(self, key: EdgeKey) -> Iterable[Node]:
        """Live occurrence sites (parent nodes) of an edge, in a stable
        order.  The returned object reflects ongoing mutation; callers
        snapshot or re-query as appropriate."""
        return self.occs.get(key, {})

    def heap_size(self) -> int:
        """Live + stale entries currently in the lazy heap."""
        return len(self._heap)

    def best(self, selectable: Callable[[EdgeKey], bool],
             min_count: int = 2) -> Optional[Tuple[EdgeKey, int]]:
        """Most frequent edge with count >= min_count passing ``selectable``.

        Ties are broken toward the lexicographically smallest key (the heap
        orders equal counts by key).  Non-selectable keys are dropped from
        the heap permanently; if a nonterminal later regains capacity
        (subsumed-rule removal from a full nonterminal), call
        :meth:`repush_lhs` to restore its keys.
        """
        heap = self._heap
        counts = self.counts
        stats = self.stats
        heappop = heapq.heappop
        heappush = heapq.heappush
        peeks = stale = pushes = 0
        try:
            while heap:
                peeks += 1
                negcount, key = heap[0]
                live = counts.get(key, 0)
                if live != -negcount:
                    # Stale.  If the count *grew* past this entry, a larger
                    # one was pushed by the increment — just discard.  If it
                    # *shrank* below (decrements never push), push the one
                    # corrected entry that keeps max-entry >= live for this
                    # key; the heap shrinks by one net entry either way.
                    heappop(heap)
                    stale += 1
                    if 0 < live < -negcount:
                        heappush(heap, (-live, key))
                        pushes += 1
                    continue
                if live < min_count:
                    return None  # heap max below threshold: nothing better
                if not selectable(key):
                    heappop(heap)
                    stats.filtered_pops += 1
                    continue
                return key, live
            return None
        finally:
            stats.peeks += peeks
            stats.stale_pops += stale
            stats.pushes += pushes

    def repush_lhs(self, lhs: int) -> None:
        """Re-enter every live key whose parent rule belongs to ``lhs``
        (used after a full nonterminal regains capacity)."""
        rules = self.grammar.rules
        for key, n in self.counts.items():
            rule = rules.get(key[0])
            if rule is not None and rule.lhs == lhs:
                heapq.heappush(self._heap, (-n, key))
                self.stats.pushes += 1

    # -- verification ---------------------------------------------------------
    def verify_against(self, forest: Forest) -> None:
        """Assert the incremental state matches a full naive recount."""
        expected = count_edges_naive(forest)
        assert self.counts == expected, (
            "incremental edge counts diverged from recount"
        )
        for key, occ in self.occs.items():
            assert len(occ) == expected[key]


class NaiveEdgeIndex(EdgeIndex):
    """The per-iteration-recount reference (paper's literal greedy loop).

    ``best`` rescans the whole forest with :func:`count_edges_naive` —
    O(forest) per query — instead of consulting a heap.  Occurrence sets
    are still maintained by the same local deltas (the expander needs them
    to drain contractions), but heap pushes are skipped, so the naive
    path's cost is the recount, not hidden incremental bookkeeping.

    Selection, including the tie-break, is bit-identical to
    :class:`EdgeIndex`: maximize count, then minimize the edge key.
    ``tests/test_edge_oracle.py`` holds the two to the same trained
    grammar, rule for rule.
    """

    _track_heap = False

    def __init__(self, grammar: Grammar, forest: Forest) -> None:
        super().__init__(grammar, forest)
        self.forest = forest

    def best(self, selectable: Callable[[EdgeKey], bool],
             min_count: int = 2) -> Optional[Tuple[EdgeKey, int]]:
        counts = count_edges_naive(self.forest)
        self.stats.recounts += 1
        best_entry: Optional[Tuple[int, EdgeKey]] = None
        for key, n in counts.items():
            if n < min_count:
                continue
            entry = (-n, key)
            if best_entry is not None and entry >= best_entry:
                continue
            if not selectable(key):
                continue
            best_entry = entry
        if best_entry is None:
            return None
        return best_entry[1], -best_entry[0]

    def repush_lhs(self, lhs: int) -> None:
        pass  # nothing cached: every query recounts

    def heap_size(self) -> int:
        return 0
