"""Edge counting over parse forests (paper Section 4.1, Figure 2).

An *edge* is a pair of rules, one used to expand a nonterminal on the
right-hand side of the other, identified by

    ``(parent_rule_id, slot, child_rule_id)``

where ``slot`` is the index of the nonterminal occurrence (0-based, counting
only nonterminals) in the parent rule's right-hand side.  Inlining the most
frequent edge and contracting all its occurrences shortens the derivation by
(roughly) the edge's count, so the expander needs fast "what is the most
frequent edge" queries while the forest is being rewritten in place.

:class:`EdgeIndex` keeps exact counts plus the set of occurrence sites
(parent nodes), updated incrementally by local deltas around each
contraction, with a lazy max-heap for the argmax.  Occurrence sets are
insertion-ordered dicts so training is deterministic run to run.
"""

from __future__ import annotations

import heapq
from typing import Callable, Dict, Iterable, Optional, Tuple

from ..grammar.cfg import Grammar
from ..parsing.forest import Forest, Node

__all__ = ["EdgeKey", "EdgeIndex", "count_edges"]

EdgeKey = Tuple[int, int, int]  # (parent_rule_id, slot, child_rule_id)


def count_edges(forest: Forest) -> Dict[EdgeKey, int]:
    """One-shot full recount (the slow reference the tests check the
    incremental index against)."""
    counts: Dict[EdgeKey, int] = {}
    for node in forest.nodes():
        for slot, child in enumerate(node.children):
            key = (node.rule_id, slot, child.rule_id)
            counts[key] = counts.get(key, 0) + 1
    return counts


class EdgeIndex:
    """Incrementally-maintained edge counts and occurrence sets."""

    def __init__(self, grammar: Grammar,
                 forest: Optional[Forest] = None) -> None:
        self.grammar = grammar
        self.counts: Dict[EdgeKey, int] = {}
        self.occs: Dict[EdgeKey, Dict[Node, None]] = {}
        self._heap: list = []  # (-count, key), lazily invalidated
        if forest is not None:
            self.index_forest(forest)

    # -- bulk -------------------------------------------------------------
    def index_forest(self, forest: Forest) -> None:
        for node in forest.nodes():
            self.add_outgoing(node)

    # -- single-edge updates ----------------------------------------------
    def _add(self, parent: Node, slot: int) -> None:
        key = (parent.rule_id, slot, parent.children[slot].rule_id)
        n = self.counts.get(key, 0) + 1
        self.counts[key] = n
        self.occs.setdefault(key, {})[parent] = None
        heapq.heappush(self._heap, (-n, key))

    def _remove(self, parent: Node, slot: int) -> None:
        key = (parent.rule_id, slot, parent.children[slot].rule_id)
        n = self.counts[key] - 1
        occ = self.occs[key]
        del occ[parent]
        if n == 0:
            del self.counts[key]
            del self.occs[key]
        else:
            self.counts[key] = n
            # Stale heap entries are discarded on pop; pushing the lowered
            # count keeps the heap an upper bound on every live count.
            heapq.heappush(self._heap, (-n, key))

    # -- node-level updates -------------------------------------------------
    def add_outgoing(self, node: Node) -> None:
        for slot in range(len(node.children)):
            self._add(node, slot)

    def remove_outgoing(self, node: Node) -> None:
        for slot in range(len(node.children)):
            self._remove(node, slot)

    def add_parent_edge(self, node: Node) -> None:
        if node.parent is not None:
            self._add(node.parent, node.pindex)

    def remove_parent_edge(self, node: Node) -> None:
        if node.parent is not None:
            self._remove(node.parent, node.pindex)

    # -- queries -------------------------------------------------------------
    def count(self, key: EdgeKey) -> int:
        return self.counts.get(key, 0)

    def occurrences(self, key: EdgeKey) -> Iterable[Node]:
        """Live occurrence sites (parent nodes) of an edge, in a stable
        order.  The returned object reflects ongoing mutation; callers
        snapshot or re-query as appropriate."""
        return self.occs.get(key, {})

    def best(self, selectable: Callable[[EdgeKey], bool],
             min_count: int = 2) -> Optional[Tuple[EdgeKey, int]]:
        """Most frequent edge with count >= min_count passing ``selectable``.

        Non-selectable keys are dropped from the heap permanently; if a
        nonterminal later regains capacity (subsumed-rule removal from a
        full nonterminal), call :meth:`repush_lhs` to restore its keys.
        """
        while self._heap:
            negcount, key = self._heap[0]
            live = self.counts.get(key, 0)
            if live != -negcount:
                # Stale: every live count was pushed when it changed, so a
                # fresher entry for this key is already in the heap.
                heapq.heappop(self._heap)
                continue
            if live < min_count:
                return None  # heap max is below threshold: nothing better
            if not selectable(key):
                heapq.heappop(self._heap)
                continue
            return key, live
        return None

    def repush_lhs(self, lhs: int) -> None:
        """Re-enter every live key whose parent rule belongs to ``lhs``
        (used after a full nonterminal regains capacity)."""
        rules = self.grammar.rules
        for key, n in self.counts.items():
            rule = rules.get(key[0])
            if rule is not None and rule.lhs == lhs:
                heapq.heappush(self._heap, (-n, key))

    # -- verification ---------------------------------------------------------
    def verify_against(self, forest: Forest) -> None:
        """Assert the incremental state matches a full recount."""
        expected = count_edges(forest)
        assert self.counts == expected, (
            "incremental edge counts diverged from recount"
        )
        for key, occ in self.occs.items():
            assert len(occ) == expected[key]
