"""The greedy grammar expander (paper Section 4.1).

Starting from the forest of parse trees for the training corpus, repeatedly:

1. find the most frequent edge (rule pair) whose parent nonterminal still
   has room (fewer than 256 rules);
2. add the inlined rule to the grammar;
3. contract every occurrence of the edge in the forest (Figure 2) — the
   derivation shrinks by one rule per contraction;
4. remove inlined rules that the new rule *subsumed* (no longer used in the
   derivation); original rules are never removed.

This is a heuristic — finding the optimal rule set is NP-hard (Section 4.1)
— but each step is exact: the forest always represents a valid derivation
of the training corpus under the current grammar.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..grammar.cfg import Grammar
from ..parsing.forest import Forest
from .edges import EdgeIndex, EdgeKey
from .inline import contract_occurrence, inline_rule

__all__ = ["TrainingReport", "expand_grammar"]


@dataclass
class TrainingReport:
    """What one training run did."""

    iterations: int = 0
    rules_added: int = 0
    rules_removed: int = 0
    contractions: int = 0
    initial_size: int = 0
    final_size: int = 0
    #: per-iteration (edge count, new rule id) — compact trace for analysis
    history: List[Tuple[int, int]] = field(default_factory=list)

    @property
    def size_ratio(self) -> float:
        """Training-forest derivation length, final / initial."""
        if self.initial_size == 0:
            return 1.0
        return self.final_size / self.initial_size


def expand_grammar(grammar: Grammar, forest: Forest, *,
                   min_count: int = 2,
                   max_iterations: Optional[int] = None,
                   remove_subsumed: bool = True,
                   keep_history: bool = False,
                   verify_every: int = 0,
                   edge_filter: Optional[Callable[[EdgeKey], bool]] = None,
                   ) -> TrainingReport:
    """Expand ``grammar`` in place against ``forest`` (also mutated).

    Args:
        min_count: only inline edges occurring at least this often
            (2 by default: a single-occurrence inline trades one derivation
            step for a whole new rule).
        max_iterations: optional hard cap on inlining steps.
        remove_subsumed: drop inlined rules that fall out of use
            (Section 4.1; original rules are always kept).
        keep_history: record (edge count, new rule id) per iteration.
        verify_every: if > 0, cross-check the incremental edge counts
            against a full recount every N iterations (slow; for tests).
        edge_filter: optional predicate over edge keys; edges it rejects
            are never inlined (used by the superoperator baseline and the
            ablation benches to restrict the pattern language).

    Returns a :class:`TrainingReport`.
    """
    index = EdgeIndex(grammar, forest)
    use_count: Dict[int, int] = {}
    size = 0
    for node in forest.nodes():
        use_count[node.rule_id] = use_count.get(node.rule_id, 0) + 1
        size += 1

    report = TrainingReport(initial_size=size)
    rules = grammar.rules

    def selectable(key: EdgeKey) -> bool:
        if edge_filter is not None and not edge_filter(key):
            return False
        return grammar.can_grow(rules[key[0]].lhs)

    while max_iterations is None or report.iterations < max_iterations:
        found = index.best(selectable, min_count=min_count)
        if found is None:
            break
        key, count = found
        parent_id, slot, child_id = key
        new_rule = inline_rule(grammar, rules[parent_id], slot,
                               rules[child_id])
        report.rules_added += 1
        report.iterations += 1
        if keep_history:
            report.history.append((count, new_rule.id))

        # Contract every live occurrence.  The occurrence set only shrinks
        # while we work on this key (contractions relabel parents to the
        # fresh rule id), so draining the live view terminates.
        occ = index.occurrences(key)
        while occ:
            node = next(iter(occ))
            contract_occurrence(node, slot, new_rule.id, index)
            use_count[parent_id] -= 1
            use_count[child_id] -= 1
            use_count[new_rule.id] = use_count.get(new_rule.id, 0) + 1
            size -= 1
            report.contractions += 1
            occ = index.occurrences(key)

        if remove_subsumed:
            for rid in (parent_id, child_id):
                if use_count.get(rid) == 0 and rules[rid].origin == "inlined":
                    lhs = rules[rid].lhs
                    was_full = not grammar.can_grow(lhs)
                    grammar.remove_rule(rid)
                    del use_count[rid]
                    report.rules_removed += 1
                    if was_full:
                        # The nonterminal regained capacity: restore its
                        # previously filtered-out heap entries.
                        index.repush_lhs(lhs)

        if verify_every and report.iterations % verify_every == 0:
            index.verify_against(forest)

    report.final_size = size
    return report
