"""The greedy grammar expander (paper Section 4.1).

Starting from the forest of parse trees for the training corpus, repeatedly:

1. find the most frequent edge (rule pair) whose parent nonterminal still
   has room (fewer than 256 rules);
2. add the inlined rule to the grammar;
3. contract every occurrence of the edge in the forest (Figure 2) — the
   derivation shrinks by one rule per contraction;
4. remove inlined rules that the new rule *subsumed* (no longer used in the
   derivation); original rules are never removed.

This is a heuristic — finding the optimal rule set is NP-hard (Section 4.1)
— but each step is exact: the forest always represents a valid derivation
of the training corpus under the current grammar.

The most-frequent-edge query runs against either the incremental
:class:`~repro.training.edges.EdgeIndex` (the default: O(degree) updates
per contraction) or the :class:`~repro.training.edges.NaiveEdgeIndex`
oracle (a full O(forest) recount per iteration, ``index_mode="naive"``).
Both must pick the same edge at every step — same count, same tie-break —
so the trained grammars are byte-identical; the oracle tests pin this.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..grammar.cfg import Grammar
from ..parsing.forest import Forest
from .edges import EdgeIndex, EdgeKey, NaiveEdgeIndex
from .inline import contract_occurrence, inline_rule

__all__ = ["TrainingReport", "TrainingStats", "expand_grammar"]


@dataclass
class TrainingReport:
    """What one training run did.

    ``rules_added``/``contractions`` cover *both* phases of a strategy
    run (maximal-repeat seeding plus greedy refinement); the ``seed_*``
    fields break the seed phase's share out, and ``iterations`` counts
    refine-phase inlining steps only.
    """

    iterations: int = 0
    rules_added: int = 0
    rules_removed: int = 0
    contractions: int = 0
    initial_size: int = 0
    final_size: int = 0
    #: total training wall time (parse + expand), filled by the pipeline
    wall_seconds: float = 0.0
    #: per-iteration (edge count, new rule id) — compact trace for analysis
    history: List[Tuple[int, int]] = field(default_factory=list)
    #: which :class:`~repro.training.strategy.TrainerStrategy` trained
    #: this grammar ("greedy" when ``expand_grammar`` was driven directly)
    strategy: str = "greedy"
    #: the strategy's non-default knobs, JSON-serializable (provenance)
    strategy_params: Dict[str, object] = field(default_factory=dict)
    #: rules added / rounds run / forest nodes removed by the seed phase
    seed_rules: int = 0
    seed_rounds: int = 0
    seed_contractions: int = 0
    #: wall seconds per phase (seed is 0.0 for seedless strategies)
    seed_seconds: float = 0.0
    refine_seconds: float = 0.0

    @property
    def size_ratio(self) -> float:
        """Training-forest derivation length, final / initial."""
        if self.initial_size == 0:
            return 1.0
        return self.final_size / self.initial_size


@dataclass
class TrainingStats(TrainingReport):
    """A :class:`TrainingReport` plus instrumentation of *how* it ran.

    Produced by ``expand_grammar(..., collect_stats=True)`` (and by
    ``pipeline.train_grammar(collect_stats=True)``, which also fills the
    parse-phase fields).  Everything here is observational — collecting it
    does not change what the expander does.
    """

    #: which index answered the argmax queries: "incremental" or "naive"
    index_mode: str = "incremental"
    #: wall-clock seconds per expander iteration (argmax + contractions)
    iter_seconds: List[float] = field(default_factory=list)
    #: lazy-heap size sampled after each iteration (0 for the naive index)
    heap_sizes: List[int] = field(default_factory=list)
    #: heap entries pushed / best() inspections / stale entries discarded
    heap_pushes: int = 0
    heap_peeks: int = 0
    heap_stale_pops: int = 0
    #: full-forest recounts performed (naive index only)
    recounts: int = 0
    #: seconds spent parsing the corpus into the forest (filled by
    #: ``pipeline.train_grammar``; 0 when the caller built the forest)
    parse_seconds: float = 0.0
    #: parser workers used by ``pipeline.train_grammar`` (1 = serial)
    parser_workers: int = 1
    #: total expander wall time
    expand_seconds: float = 0.0
    #: wall seconds per maximal-repeat seed round (seeding strategies)
    seed_round_seconds: List[float] = field(default_factory=list)

    @property
    def heap_hit_rate(self) -> float:
        """Fraction of best() heap inspections that saw a live entry
        (1.0 for the naive index, which never inspects a heap)."""
        if self.heap_peeks == 0:
            return 1.0
        return 1.0 - self.heap_stale_pops / self.heap_peeks

    @property
    def heap_peak(self) -> int:
        return max(self.heap_sizes, default=0)

    @property
    def mean_iter_ms(self) -> float:
        if not self.iter_seconds:
            return 0.0
        return 1000.0 * sum(self.iter_seconds) / len(self.iter_seconds)

    def summary_lines(self) -> List[str]:
        """Human-readable digest (the CLI's ``--stats`` output): one line
        per phase — parse, seed (when the strategy has one), refine —
        each with its own wall time, then the index/heap behaviour."""
        lines = [
            f"trainer: {self.strategy}; parse {self.parse_seconds:.3f}s "
            f"({self.parser_workers} worker(s))",
        ]
        if self.seed_rounds:
            per_round = ""
            if self.seed_round_seconds:
                per_round = " [" + " ".join(
                    f"{s:.3f}s" for s in self.seed_round_seconds) + "]"
            lines.append(
                f"seed: {self.seed_seconds:.3f}s, {self.seed_rounds} "
                f"round(s){per_round}; {self.seed_rules} rules, "
                f"{self.seed_contractions} contractions")
        lines.append(
            f"refine: {self.refine_seconds:.3f}s, {self.iterations} "
            f"inlines (mean {self.mean_iter_ms:.2f} ms), "
            f"index {self.index_mode}")
        lines.append(
            f"heap: peak {self.heap_peak} entries, "
            f"{self.heap_pushes} pushes, hit rate "
            f"{self.heap_hit_rate:.1%} "
            f"({self.heap_stale_pops}/{self.heap_peeks} stale)")
        if self.recounts:
            lines.append(f"naive recounts: {self.recounts}")
        return lines


def expand_grammar(grammar: Grammar, forest: Forest, *,
                   min_count: int = 2,
                   max_iterations: Optional[int] = None,
                   remove_subsumed: bool = True,
                   keep_history: bool = False,
                   verify_every: int = 0,
                   edge_filter: Optional[Callable[[EdgeKey], bool]] = None,
                   index_mode: str = "incremental",
                   collect_stats: bool = False,
                   ) -> TrainingReport:
    """Expand ``grammar`` in place against ``forest`` (also mutated).

    Args:
        min_count: only inline edges occurring at least this often
            (2 by default: a single-occurrence inline trades one derivation
            step for a whole new rule).
        max_iterations: optional hard cap on inlining steps.
        remove_subsumed: drop inlined rules that fall out of use
            (Section 4.1; original rules are always kept).
        keep_history: record (edge count, new rule id) per iteration.
        verify_every: if > 0, cross-check the incremental edge counts
            against a full recount every N iterations (slow; for tests).
        edge_filter: optional predicate over edge keys; edges it rejects
            are never inlined (used by the superoperator baseline and the
            ablation benches to restrict the pattern language).
        index_mode: ``"incremental"`` (lazy-heap :class:`EdgeIndex`) or
            ``"naive"`` (full recount per iteration — the oracle/baseline).
            Both trained grammars are identical; only the speed differs.
        collect_stats: return a :class:`TrainingStats` (per-iteration wall
            times, heap sizes, hit rates) instead of a plain report.

    Returns a :class:`TrainingReport` (or :class:`TrainingStats`).
    """
    if index_mode == "incremental":
        index = EdgeIndex(grammar, forest)
    elif index_mode == "naive":
        index = NaiveEdgeIndex(grammar, forest)
    else:
        raise ValueError(f"unknown index_mode {index_mode!r}")

    use_count: Dict[int, int] = {}
    size = 0
    for node in forest.nodes():
        use_count[node.rule_id] = use_count.get(node.rule_id, 0) + 1
        size += 1

    if collect_stats:
        report = TrainingStats(initial_size=size, index_mode=index_mode)
    else:
        report = TrainingReport(initial_size=size)
    rules = grammar.rules

    def selectable(key: EdgeKey) -> bool:
        if edge_filter is not None and not edge_filter(key):
            return False
        return grammar.can_grow(rules[key[0]].lhs)

    expand_start = time.perf_counter()
    while max_iterations is None or report.iterations < max_iterations:
        iter_start = time.perf_counter() if collect_stats else 0.0
        found = index.best(selectable, min_count=min_count)
        if found is None:
            break
        key, count = found
        parent_id, slot, child_id = key
        new_rule = inline_rule(grammar, rules[parent_id], slot,
                               rules[child_id])
        report.rules_added += 1
        report.iterations += 1
        if keep_history:
            report.history.append((count, new_rule.id))

        # Contract every live occurrence.  The occurrence set only shrinks
        # while we work on this key (contractions relabel parents to the
        # fresh rule id), so draining the live view terminates.
        occ = index.occurrences(key)
        while occ:
            node = next(iter(occ))
            contract_occurrence(node, slot, new_rule.id, index)
            use_count[parent_id] -= 1
            use_count[child_id] -= 1
            use_count[new_rule.id] = use_count.get(new_rule.id, 0) + 1
            size -= 1
            report.contractions += 1
            occ = index.occurrences(key)

        if remove_subsumed:
            for rid in (parent_id, child_id):
                if use_count.get(rid) == 0 and rules[rid].origin == "inlined":
                    lhs = rules[rid].lhs
                    was_full = not grammar.can_grow(lhs)
                    grammar.remove_rule(rid)
                    del use_count[rid]
                    report.rules_removed += 1
                    if was_full:
                        # The nonterminal regained capacity: restore its
                        # previously filtered-out heap entries.
                        index.repush_lhs(lhs)

        if collect_stats:
            report.iter_seconds.append(time.perf_counter() - iter_start)
            report.heap_sizes.append(index.heap_size())

        if verify_every and report.iterations % verify_every == 0:
            index.verify_against(forest)

    report.final_size = size
    report.refine_seconds = time.perf_counter() - expand_start
    if collect_stats:
        report.expand_seconds = report.refine_seconds
        report.heap_pushes = index.stats.pushes
        report.heap_peeks = index.stats.peeks
        report.heap_stale_pops = index.stats.stale_pops
        report.recounts = index.stats.recounts
    return report
