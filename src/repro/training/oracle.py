"""Frozen pre-refactor greedy expander (the golden oracle).

When training moved onto the pluggable :class:`TrainerStrategy` pipeline,
the claim was *bit-identical behaviour* for the greedy strategy: the same
grammar — same rules, same order, same fragments — and the same report
numbers as the monolithic ``expand_grammar`` loop produced before the
seam existed.  This module freezes that loop verbatim (modulo the report
class gaining defaulted provenance fields) so the claim stays checkable
forever:

* ``tests/test_trainer_strategies.py`` sweeps 50 fuzz seeds asserting
  rule-for-rule equality of ``train_grammar(strategy="greedy")`` against
  :func:`oracle_expand_grammar` on a freshly parsed forest.

Nothing here is reachable from production code; do not "optimize" it —
its value is that it never changes.  (Same pattern as
:mod:`repro.compress.oracle`, the GrammarProgram-refactor oracle.)
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Optional

from ..grammar.cfg import Grammar
from ..parsing.forest import Forest
from .edges import EdgeIndex, EdgeKey, NaiveEdgeIndex
from .expander import TrainingReport, TrainingStats
from .inline import contract_occurrence, inline_rule

__all__ = ["oracle_expand_grammar"]


def oracle_expand_grammar(grammar: Grammar, forest: Forest, *,
                          min_count: int = 2,
                          max_iterations: Optional[int] = None,
                          remove_subsumed: bool = True,
                          keep_history: bool = False,
                          verify_every: int = 0,
                          edge_filter: Optional[
                              Callable[[EdgeKey], bool]] = None,
                          index_mode: str = "incremental",
                          collect_stats: bool = False,
                          ) -> TrainingReport:
    """The greedy expander exactly as it stood before the strategy seam."""
    if index_mode == "incremental":
        index = EdgeIndex(grammar, forest)
    elif index_mode == "naive":
        index = NaiveEdgeIndex(grammar, forest)
    else:
        raise ValueError(f"unknown index_mode {index_mode!r}")

    use_count: Dict[int, int] = {}
    size = 0
    for node in forest.nodes():
        use_count[node.rule_id] = use_count.get(node.rule_id, 0) + 1
        size += 1

    if collect_stats:
        report = TrainingStats(initial_size=size, index_mode=index_mode)
    else:
        report = TrainingReport(initial_size=size)
    rules = grammar.rules

    def selectable(key: EdgeKey) -> bool:
        if edge_filter is not None and not edge_filter(key):
            return False
        return grammar.can_grow(rules[key[0]].lhs)

    expand_start = time.perf_counter()
    while max_iterations is None or report.iterations < max_iterations:
        iter_start = time.perf_counter() if collect_stats else 0.0
        found = index.best(selectable, min_count=min_count)
        if found is None:
            break
        key, count = found
        parent_id, slot, child_id = key
        new_rule = inline_rule(grammar, rules[parent_id], slot,
                               rules[child_id])
        report.rules_added += 1
        report.iterations += 1
        if keep_history:
            report.history.append((count, new_rule.id))

        occ = index.occurrences(key)
        while occ:
            node = next(iter(occ))
            contract_occurrence(node, slot, new_rule.id, index)
            use_count[parent_id] -= 1
            use_count[child_id] -= 1
            use_count[new_rule.id] = use_count.get(new_rule.id, 0) + 1
            size -= 1
            report.contractions += 1
            occ = index.occurrences(key)

        if remove_subsumed:
            for rid in (parent_id, child_id):
                if use_count.get(rid) == 0 and rules[rid].origin == "inlined":
                    lhs = rules[rid].lhs
                    was_full = not grammar.can_grow(lhs)
                    grammar.remove_rule(rid)
                    del use_count[rid]
                    report.rules_removed += 1
                    if was_full:
                        index.repush_lhs(lhs)

        if collect_stats:
            report.iter_seconds.append(time.perf_counter() - iter_start)
            report.heap_sizes.append(index.heap_size())

        if verify_every and report.iterations % verify_every == 0:
            index.verify_against(forest)

    report.final_size = size
    if collect_stats:
        report.expand_seconds = time.perf_counter() - expand_start
        report.heap_pushes = index.stats.pushes
        report.heap_peeks = index.stats.peeks
        report.heap_stale_pops = index.stats.stale_pops
        report.recounts = index.stats.recounts
    return report
