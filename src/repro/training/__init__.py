"""Grammar training: edge counting, inlining, greedy expansion."""

from .edges import EdgeIndex, EdgeKey, count_edges
from .inline import contract_occurrence, inline_rule
from .expander import TrainingReport, expand_grammar

__all__ = [
    "EdgeIndex", "EdgeKey", "count_edges",
    "contract_occurrence", "inline_rule",
    "TrainingReport", "expand_grammar",
]
