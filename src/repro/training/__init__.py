"""Grammar training: edge counting, inlining, greedy expansion."""

from .edges import (
    EdgeIndex,
    EdgeKey,
    NaiveEdgeIndex,
    count_edges,
    count_edges_naive,
)
from .inline import contract_occurrence, inline_rule
from .expander import TrainingReport, TrainingStats, expand_grammar

__all__ = [
    "EdgeIndex", "EdgeKey", "NaiveEdgeIndex",
    "count_edges", "count_edges_naive",
    "contract_occurrence", "inline_rule",
    "TrainingReport", "TrainingStats", "expand_grammar",
]
