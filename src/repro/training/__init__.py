"""Grammar training: edge counting, inlining, pluggable trainer
strategies (greedy edge contraction, MR-RePair maximal-repeat seeding,
and the hybrid of the two)."""

from .edges import (
    EdgeIndex,
    EdgeKey,
    NaiveEdgeIndex,
    count_edges,
    count_edges_naive,
)
from .inline import contract_occurrence, inline_rule
from .expander import TrainingReport, TrainingStats, expand_grammar
from .strategy import (
    STRATEGIES,
    SeedReport,
    TrainerStrategy,
    register_strategy,
    resolve_strategy,
)
from .greedy import GreedyStrategy
from .repair import HybridStrategy, RepairStrategy, repair_seed

__all__ = [
    "EdgeIndex", "EdgeKey", "NaiveEdgeIndex",
    "count_edges", "count_edges_naive",
    "contract_occurrence", "inline_rule",
    "TrainingReport", "TrainingStats", "expand_grammar",
    "STRATEGIES", "SeedReport", "TrainerStrategy",
    "register_strategy", "resolve_strategy",
    "GreedyStrategy", "RepairStrategy", "HybridStrategy", "repair_seed",
]
