"""Rule inlining and edge contraction (paper Section 4.1, Figure 2).

Inlining takes two rules ``A -> alpha B beta`` and ``B -> gamma`` and adds
``A -> alpha gamma beta``.  It never changes the language.  Contracting an
occurrence of the corresponding edge in the forest makes the child's
children the parent's children and relabels the parent with the new rule —
the derivation shrinks by one step per contraction.
"""

from __future__ import annotations

from typing import Optional

from ..grammar.cfg import Grammar, Rule, fragment_graft
from ..parsing.forest import Node
from .edges import EdgeIndex

__all__ = ["inline_rule", "contract_occurrence"]


def inline_rule(grammar: Grammar, parent: Rule, slot: int,
                child: Rule) -> Rule:
    """Add the inlined rule for edge (parent, slot, child) to the grammar.

    ``slot`` indexes the nonterminal occurrences of ``parent.rhs`` (0-based,
    nonterminals only) and must name an occurrence of ``child.lhs``.
    """
    pos = parent.nt_positions[slot]
    if parent.rhs[pos] != child.lhs:
        raise ValueError(
            f"slot {slot} of rule {parent.id} is "
            f"<{grammar.nt_name(parent.rhs[pos])}>, not "
            f"<{grammar.nt_name(child.lhs)}>"
        )
    rhs = parent.rhs[:pos] + child.rhs + parent.rhs[pos + 1:]
    fragment = fragment_graft(parent.fragment, slot, child.fragment)
    return grammar.add_rule(parent.lhs, rhs, origin="inlined",
                            fragment=fragment)


def contract_occurrence(node: Node, slot: int, new_rule_id: int,
                        index: Optional[EdgeIndex] = None) -> Node:
    """Contract the edge at ``node.children[slot]`` (Figure 2).

    The child node is removed from the tree: its children are spliced into
    the parent's child list at ``slot`` and the parent is relabeled with the
    inlined rule.  If an :class:`EdgeIndex` is given, its counts are kept
    consistent by local deltas: the only edges whose identity changes are
    those incident to ``node`` and ``child`` (the parent relabels, slots
    shift, the child's edges become the parent's), so the update is
    O(degree of the two nodes), never O(forest).  Returns the removed
    child node.
    """
    child = node.children[slot]
    if index is not None:
        index.remove_parent_edge(node)
        index.remove_outgoing(node)
        index.remove_outgoing(child)
    node.rule_id = new_rule_id
    node.replace_children(
        node.children[:slot] + child.children + node.children[slot + 1:]
    )
    child.parent = None
    child.pindex = -1
    if index is not None:
        index.add_outgoing(node)
        index.add_parent_edge(node)
    return child
