"""The pluggable trainer-strategy seam (ROADMAP: RePair-family seeding).

A *trainer strategy* decides how the forest of parse trees becomes an
expanded grammar.  Every strategy runs the same two-phase shape:

1. **seed** — optionally add rules wholesale (e.g. MR-RePair maximal
   repeats) and contract their occurrences in the forest;
2. **refine** — optionally run the greedy profiled edge-contraction loop
   (:func:`~repro.training.expander.expand_grammar`) over whatever the
   seed phase left.

``train`` drives both phases, times each, and folds the seed phase's
work into the returned :class:`TrainingReport` so every consumer —
pipeline, registry provenance, CLI ``--stats``, experiment harness —
sees one uniform record with the strategy's identity attached.

Strategies register themselves by name (``@register_strategy``);
:func:`resolve_strategy` turns a name, class, or instance into a ready
instance, so ``train_grammar(strategy="hybrid")`` and
``repro train --trainer hybrid`` share one lookup path.  The concrete
strategies live one layer up — :mod:`repro.training.greedy` and
:mod:`repro.training.repair` — and this module never imports them at
module level (the adaptive-retraining ROADMAP item will plug new ones
into the same registry).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Type, Union

from ..grammar.cfg import Grammar
from ..parsing.forest import Forest
from .expander import TrainingReport, TrainingStats, expand_grammar

__all__ = [
    "SeedReport",
    "TrainerStrategy",
    "STRATEGIES",
    "register_strategy",
    "resolve_strategy",
]


@dataclass
class SeedReport:
    """What one seed phase did (folded into the TrainingReport)."""

    rules_added: int = 0
    rules_reused: int = 0
    rounds: int = 0
    contractions: int = 0
    round_seconds: List[float] = field(default_factory=list)


class TrainerStrategy:
    """Base strategy: no seeding, no refinement.

    Subclasses override :meth:`seed` and/or :meth:`refine`; constructor
    keyword arguments are the strategy's own knobs and are recorded
    verbatim as provenance (:attr:`TrainingReport.strategy_params`), so
    they must be JSON-serializable.  Pipeline-level knobs (``min_count``,
    ``index_mode``, ...) arrive as :meth:`train` arguments instead —
    they mean the same thing for every strategy.
    """

    id: str = "none"

    def params(self) -> Dict[str, object]:
        """The strategy's own knobs, for provenance (default: none)."""
        return {}

    def seed(self, grammar: Grammar, forest: Forest, *,
             min_count: int = 2) -> Optional[SeedReport]:
        """Phase 1: bulk rule creation.  Mutates grammar and forest in
        place; returns ``None`` when the strategy does not seed."""
        return None

    def refine(self, grammar: Grammar, forest: Forest, *,
               min_count: int = 2,
               remove_subsumed: bool = True,
               max_iterations: Optional[int] = None,
               index_mode: str = "incremental",
               collect_stats: bool = False) -> TrainingReport:
        """Phase 2: greedy expansion.  The default is a no-op that just
        measures the (post-seed) forest so the report sizes are honest."""
        size = sum(1 for _ in forest.nodes())
        if collect_stats:
            report = TrainingStats(initial_size=size, index_mode="none")
        else:
            report = TrainingReport(initial_size=size)
        report.final_size = size
        return report

    def train(self, grammar: Grammar, forest: Forest, *,
              min_count: int = 2,
              remove_subsumed: bool = True,
              max_iterations: Optional[int] = None,
              index_mode: str = "incremental",
              collect_stats: bool = False) -> TrainingReport:
        """Run seed then refine; return one merged report.

        ``initial_size`` is always the *pre-seed* derivation length and
        ``rules_added``/``contractions`` include both phases, so
        ``size_ratio`` means the same thing for every strategy.
        """
        pre_size = sum(1 for _ in forest.nodes())
        seed_start = time.perf_counter()
        seeded = self.seed(grammar, forest, min_count=min_count)
        seed_seconds = time.perf_counter() - seed_start
        report = self.refine(
            grammar, forest,
            min_count=min_count,
            remove_subsumed=remove_subsumed,
            max_iterations=max_iterations,
            index_mode=index_mode,
            collect_stats=collect_stats,
        )
        report.strategy = self.id
        report.strategy_params = self.params()
        if seeded is not None:
            report.seed_rules = seeded.rules_added
            report.seed_rounds = seeded.rounds
            report.seed_contractions = seeded.contractions
            report.seed_seconds = seed_seconds
            report.rules_added += seeded.rules_added
            report.contractions += seeded.contractions
            report.initial_size = pre_size
            if isinstance(report, TrainingStats):
                report.seed_round_seconds = list(seeded.round_seconds)
        return report


def _greedy_refine(grammar: Grammar, forest: Forest, *,
                   min_count: int = 2,
                   remove_subsumed: bool = True,
                   max_iterations: Optional[int] = None,
                   index_mode: str = "incremental",
                   collect_stats: bool = False) -> TrainingReport:
    """The shared refine phase: the paper's greedy profiled expander,
    with exactly the argument surface :meth:`TrainerStrategy.refine`
    promises (used by the greedy and hybrid strategies)."""
    return expand_grammar(
        grammar, forest,
        min_count=min_count,
        remove_subsumed=remove_subsumed,
        max_iterations=max_iterations,
        index_mode=index_mode,
        collect_stats=collect_stats,
    )


#: name -> strategy class; populated by :func:`register_strategy`
STRATEGIES: Dict[str, Type[TrainerStrategy]] = {}


def register_strategy(cls: Type[TrainerStrategy]) -> Type[TrainerStrategy]:
    """Class decorator: make ``cls`` resolvable by its ``id``."""
    if not cls.id or cls.id in STRATEGIES:
        raise ValueError(f"bad or duplicate strategy id {cls.id!r}")
    STRATEGIES[cls.id] = cls
    return cls


def resolve_strategy(spec: Union[str, TrainerStrategy,
                                 Type[TrainerStrategy]],
                     **params) -> TrainerStrategy:
    """Name | class | instance -> ready instance.

    Extra keyword arguments are the strategy's constructor knobs; passing
    them with an already-constructed instance is an error (ambiguous).
    """
    # Importing the concrete strategies registers them; lazy so this
    # module stays importable below them in the layer order.
    from . import greedy, repair  # noqa: F401
    if isinstance(spec, TrainerStrategy):
        if params:
            raise ValueError(
                "cannot apply params to an already-built strategy")
        return spec
    if isinstance(spec, type) and issubclass(spec, TrainerStrategy):
        return spec(**params)
    cls = STRATEGIES.get(spec)
    if cls is None:
        known = ", ".join(sorted(STRATEGIES))
        raise ValueError(f"unknown trainer strategy {spec!r} "
                         f"(known: {known})")
    return cls(**params)
