"""Sync and async clients for the compression service.

:class:`ServiceClient` is a plain blocking-socket client — no asyncio in
the caller's process, usable from threads (one connection per instance;
instances are not thread-safe, share nothing or use one per thread).
:class:`AsyncServiceClient` is the same surface over asyncio streams.
Both raise :class:`ServiceError` carrying the server's structured error
code (``overloaded``, ``timeout``, ``not_found``, ...).

Retry is built in: pass a :class:`~repro.service.retry.RetryPolicy` and
every call retries retryable failures — the server's ``overloaded`` /
``timeout`` / ``shutting_down`` codes plus client-side ``transport``
failures (connection reset, torn frame, refused connect) — with
exponential backoff and full jitter, reconnecting transparently after a
transport failure.  Non-retryable codes (``bad_request``, ``not_found``,
``trap``, ``internal``) raise immediately; when attempts are exhausted
the *last* structured error is raised, so the caller still sees exactly
what the server said.

A ``deadline`` (seconds of total budget for the call, retries included)
bounds the loop: sleeps never exceed the remaining budget, the remaining
budget travels to the server in each request envelope (the server clamps
its per-request timeout to it), and an exhausted budget stops retrying.

Framing: both clients speak the zero-copy **binary frames** by default
(module bytes cross the wire raw, not base64); pass ``binary=False`` for
the legacy JSON-only framing — the server answers each request in the
framing it arrived in, so either mode works against any current server.
"""

from __future__ import annotations

import asyncio
import socket
import time
from typing import Dict, Optional, Sequence, Tuple

from . import protocol
from .protocol import ServiceError, b64d
from .retry import TRANSPORT, RetryPolicy

__all__ = ["ServiceClient", "AsyncServiceClient", "ServiceError",
           "RetryPolicy"]


def _check_response(msg: dict, expect_id: int) -> dict:
    if msg.get("id") != expect_id:
        if msg.get("ok") is False and msg.get("id") is None:
            # The server could not *parse* our frame (corruption in
            # flight): a connection-level failure, not a response to
            # this request.  Surface it as a retryable transport error;
            # the caller drops the desynced connection.
            error = msg.get("error") or {}
            raise ServiceError(
                TRANSPORT, "server rejected the request frame: "
                + error.get("message", "unreadable frame"))
        raise ServiceError("protocol", f"response id {msg.get('id')!r} "
                                       f"does not match request {expect_id}")
    if msg.get("ok"):
        result = msg.get("result")
        return result if isinstance(result, dict) else {}
    error = msg.get("error") or {}
    raise ServiceError(error.get("code", "unknown"),
                       error.get("message", "unspecified error"))


def _bytes_field(result: dict, key: str) -> bytes:
    """A binary result field: raw bytes off a binary frame, or base64
    off a JSON frame."""
    value = result.get(key)
    if isinstance(value, (bytes, bytearray, memoryview)):
        return bytes(value)
    if isinstance(value, str):
        return b64d(value)
    raise ServiceError("protocol", f"response missing binary field {key!r}")


def _deadline_at(deadline: Optional[float]) -> Optional[float]:
    return time.monotonic() + deadline if deadline is not None else None


def _remaining(deadline_at: Optional[float]) -> Optional[float]:
    if deadline_at is None:
        return None
    return deadline_at - time.monotonic()


def _envelope(req_id: int, method: str, params: Optional[dict],
              deadline_at: Optional[float]) -> dict:
    msg = {"id": req_id, "method": method, "params": params or {}}
    remaining = _remaining(deadline_at)
    if remaining is not None:
        if remaining <= 0:
            raise ServiceError(
                protocol.E_TIMEOUT,
                "client deadline exhausted before the request was sent")
        msg["deadline"] = remaining
    return msg


def _next_delay(policy: RetryPolicy, attempt: int,
                deadline_at: Optional[float]) -> float:
    """Backoff before retry ``attempt``, clipped to the deadline budget."""
    delay = policy.backoff(attempt)
    remaining = _remaining(deadline_at)
    if remaining is not None:
        delay = min(delay, max(0.0, remaining))
    return delay


def _check_budget(deadline_at: Optional[float],
                  last: Optional[ServiceError]) -> None:
    """Stop retrying on an exhausted deadline: surface the *last*
    structured error (the caller learns what the server actually said,
    not a synthetic timeout) unless no attempt ever ran."""
    remaining = _remaining(deadline_at)
    if remaining is not None and remaining <= 0:
        if last is not None:
            raise last
        raise ServiceError(protocol.E_TIMEOUT,
                           "client deadline exhausted before the "
                           "request was sent")


class _MethodMixin:
    """Typed convenience wrappers over ``call`` — shared by both clients
    modulo sync/async, via the subclass's ``_call`` being awaited or not
    at the call site (each wrapper is duplicated below where the calling
    convention differs)."""

    @staticmethod
    def _compress_params(module_data: bytes, grammar_ref: str,
                         format: str = "rcx1") -> dict:
        # raw bytes: the framing codec carries them as the binary
        # payload (or base64s them in legacy JSON mode)
        params = {"module": bytes(module_data), "grammar": grammar_ref}
        if format != "rcx1":
            params["format"] = format
        return params

    @staticmethod
    def _run_params(module_data: bytes, args: Sequence[int],
                    input_data: bytes) -> dict:
        params: Dict = {"module": bytes(module_data), "args": list(args)}
        if input_data:
            params["input"] = bytes(input_data)
        return params

    @staticmethod
    def _put_params(grammar_data: bytes, tags: Sequence[str],
                    meta: Optional[dict]) -> dict:
        params: Dict = {"data": bytes(grammar_data), "tags": list(tags)}
        if meta is not None:
            params["meta"] = meta
        return params


class ServiceClient(_MethodMixin):
    """Blocking client.  Usable as a context manager.

    ``retry=None`` (the default) keeps the old single-shot behaviour;
    pass a :class:`RetryPolicy` for backoff.  ``deadline`` is a default
    per-call budget in seconds (overridable per call).
    """

    def __init__(self, host: str = "127.0.0.1",
                 port: int = protocol.DEFAULT_PORT, *,
                 timeout: Optional[float] = 60.0,
                 retry: Optional[RetryPolicy] = None,
                 deadline: Optional[float] = None,
                 binary: bool = True) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retry = retry
        self.default_deadline = deadline
        self.binary = binary
        self._next_id = 0
        self._sock: Optional[socket.socket] = socket.create_connection(
            (host, port), timeout=timeout)

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _call_once(self, method: str, params: Optional[dict],
                   deadline_at: Optional[float]) -> dict:
        if self._sock is None:  # transparent reconnection after a drop
            try:
                self._sock = socket.create_connection(
                    (self.host, self.port), timeout=self.timeout)
            except OSError as exc:
                raise ServiceError(
                    TRANSPORT, f"cannot connect to "
                    f"{self.host}:{self.port}: {exc}") from exc
        self._next_id += 1
        req_id = self._next_id
        try:
            protocol.send_message_sync(
                self._sock, _envelope(req_id, method, params, deadline_at),
                binary=self.binary)
            msg, _ = protocol.recv_message_sync(self._sock)
        except (OSError, protocol.FrameError) as exc:
            self.close()  # the stream may be desynced: start fresh
            raise ServiceError(TRANSPORT, str(exc)) from exc
        try:
            return _check_response(msg, req_id)
        except ServiceError as exc:
            if exc.code in ("protocol", TRANSPORT):
                self.close()  # never trust a desynced stream again
            raise

    def call(self, method: str, params: Optional[dict] = None, *,
             deadline: Optional[float] = None) -> dict:
        if deadline is None:
            deadline = self.default_deadline
        deadline_at = _deadline_at(deadline)
        policy = self.retry
        attempts = policy.max_attempts if policy is not None else 1
        last: Optional[ServiceError] = None
        for attempt in range(attempts):
            _check_budget(deadline_at, last)
            try:
                return self._call_once(method, params, deadline_at)
            except ServiceError as exc:
                last = exc
                if policy is None or not policy.retries(exc.code) \
                        or attempt + 1 >= attempts:
                    raise
            time.sleep(_next_delay(policy, attempt, deadline_at))
        raise last  # pragma: no cover — loop always raises or returns

    # -- convenience methods ------------------------------------------------

    def health(self) -> dict:
        return self.call("health")

    def stats(self) -> dict:
        return self.call("stats")

    def put_grammar(self, grammar_data: bytes,
                    tags: Sequence[str] = (),
                    meta: Optional[dict] = None) -> str:
        return self.call("grammar.put",
                         self._put_params(grammar_data, tags,
                                          meta))["hash"]

    def list_grammars(self) -> dict:
        return self.call("grammar.list")

    def get_grammar(self, ref: str) -> Tuple[bytes, dict]:
        result = self.call("grammar.get", {"ref": ref})
        return _bytes_field(result, "data"), result["meta"]

    def compress(self, module_data: bytes, grammar_ref: str,
                 format: str = "rcx1") -> bytes:
        result = self.call("compress",
                           self._compress_params(module_data,
                                                 grammar_ref, format))
        return _bytes_field(result, "data")

    def decompress(self, compressed_data: bytes) -> bytes:
        result = self.call("decompress",
                           {"module": bytes(compressed_data)})
        return _bytes_field(result, "data")

    def run_compressed(self, compressed_data: bytes,
                       args: Sequence[int] = (),
                       input_data: bytes = b"") -> Tuple[int, bytes]:
        result = self.call("run_compressed",
                           self._run_params(compressed_data, args,
                                            input_data))
        return result["code"], _bytes_field(result, "output")


class AsyncServiceClient(_MethodMixin):
    """The same surface over asyncio streams (same retry semantics)."""

    def __init__(self, host: str = "127.0.0.1",
                 port: int = protocol.DEFAULT_PORT, *,
                 retry: Optional[RetryPolicy] = None,
                 deadline: Optional[float] = None,
                 binary: bool = True) -> None:
        self.host = host
        self.port = port
        self.retry = retry
        self.default_deadline = deadline
        self.binary = binary
        self._next_id = 0
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None

    async def connect(self) -> "AsyncServiceClient":
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port)
        return self

    async def close(self) -> None:
        writer, self._reader, self._writer = self._writer, None, None
        if writer is not None:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def __aenter__(self) -> "AsyncServiceClient":
        return await self.connect()

    async def __aexit__(self, *exc) -> None:
        await self.close()

    async def _call_once(self, method: str, params: Optional[dict],
                         deadline_at: Optional[float]) -> dict:
        if self._reader is None:
            try:
                await self.connect()
            except OSError as exc:
                raise ServiceError(
                    TRANSPORT, f"cannot connect to "
                    f"{self.host}:{self.port}: {exc}") from exc
        self._next_id += 1
        req_id = self._next_id
        try:
            await protocol.write_message(
                self._writer,
                _envelope(req_id, method, params, deadline_at),
                binary=self.binary)
            item = await protocol.read_message(self._reader)
        except (OSError, protocol.FrameError) as exc:
            await self.close()
            raise ServiceError(TRANSPORT, str(exc)) from exc
        if item is None:
            await self.close()
            raise ServiceError(TRANSPORT, "server closed the connection")
        try:
            return _check_response(item[0], req_id)
        except ServiceError as exc:
            if exc.code in ("protocol", TRANSPORT):
                await self.close()
            raise

    async def call(self, method: str,
                   params: Optional[dict] = None, *,
                   deadline: Optional[float] = None) -> dict:
        if deadline is None:
            deadline = self.default_deadline
        deadline_at = _deadline_at(deadline)
        policy = self.retry
        attempts = policy.max_attempts if policy is not None else 1
        last: Optional[ServiceError] = None
        for attempt in range(attempts):
            _check_budget(deadline_at, last)
            try:
                return await self._call_once(method, params, deadline_at)
            except ServiceError as exc:
                last = exc
                if policy is None or not policy.retries(exc.code) \
                        or attempt + 1 >= attempts:
                    raise
            await asyncio.sleep(
                _next_delay(policy, attempt, deadline_at))
        raise last  # pragma: no cover — loop always raises or returns

    async def health(self) -> dict:
        return await self.call("health")

    async def stats(self) -> dict:
        return await self.call("stats")

    async def put_grammar(self, grammar_data: bytes,
                          tags: Sequence[str] = (),
                          meta: Optional[dict] = None) -> str:
        result = await self.call(
            "grammar.put", self._put_params(grammar_data, tags, meta))
        return result["hash"]

    async def list_grammars(self) -> dict:
        return await self.call("grammar.list")

    async def get_grammar(self, ref: str) -> Tuple[bytes, dict]:
        result = await self.call("grammar.get", {"ref": ref})
        return _bytes_field(result, "data"), result["meta"]

    async def compress(self, module_data: bytes, grammar_ref: str,
                       format: str = "rcx1") -> bytes:
        result = await self.call(
            "compress",
            self._compress_params(module_data, grammar_ref, format))
        return _bytes_field(result, "data")

    async def decompress(self, compressed_data: bytes) -> bytes:
        result = await self.call("decompress",
                                 {"module": bytes(compressed_data)})
        return _bytes_field(result, "data")

    async def run_compressed(self, compressed_data: bytes,
                             args: Sequence[int] = (),
                             input_data: bytes = b"") -> Tuple[int, bytes]:
        result = await self.call(
            "run_compressed",
            self._run_params(compressed_data, args, input_data))
        return result["code"], _bytes_field(result, "output")
