"""Sync and async clients for the compression service.

:class:`ServiceClient` is a plain blocking-socket client — no asyncio in
the caller's process, usable from threads (one connection per instance;
instances are not thread-safe, share nothing or use one per thread).
:class:`AsyncServiceClient` is the same surface over asyncio streams.
Both raise :class:`ServiceError` carrying the server's structured error
code (``overloaded``, ``timeout``, ``not_found``, ...), so callers can
implement retry-with-backoff on exactly the retryable codes.
"""

from __future__ import annotations

import asyncio
import socket
from typing import Dict, Optional, Sequence, Tuple

from . import protocol
from .protocol import ServiceError, b64d, b64e

__all__ = ["ServiceClient", "AsyncServiceClient", "ServiceError"]


def _check_response(msg: dict, expect_id: int) -> dict:
    if msg.get("id") != expect_id:
        raise ServiceError("protocol", f"response id {msg.get('id')!r} "
                                       f"does not match request {expect_id}")
    if msg.get("ok"):
        result = msg.get("result")
        return result if isinstance(result, dict) else {}
    error = msg.get("error") or {}
    raise ServiceError(error.get("code", "unknown"),
                       error.get("message", "unspecified error"))


class _MethodMixin:
    """Typed convenience wrappers over ``call`` — shared by both clients
    modulo sync/async, via the subclass's ``_call`` being awaited or not
    at the call site (each wrapper is duplicated below where the calling
    convention differs)."""

    @staticmethod
    def _compress_params(module_data: bytes, grammar_ref: str) -> dict:
        return {"module": b64e(module_data), "grammar": grammar_ref}

    @staticmethod
    def _run_params(module_data: bytes, args: Sequence[int],
                    input_data: bytes) -> dict:
        params: Dict = {"module": b64e(module_data), "args": list(args)}
        if input_data:
            params["input"] = b64e(input_data)
        return params

    @staticmethod
    def _put_params(grammar_data: bytes, tags: Sequence[str],
                    meta: Optional[dict]) -> dict:
        params: Dict = {"data": b64e(grammar_data), "tags": list(tags)}
        if meta is not None:
            params["meta"] = meta
        return params


class ServiceClient(_MethodMixin):
    """Blocking client.  Usable as a context manager."""

    def __init__(self, host: str = "127.0.0.1",
                 port: int = protocol.DEFAULT_PORT, *,
                 timeout: Optional[float] = 60.0) -> None:
        self.host = host
        self.port = port
        self._next_id = 0
        self._sock = socket.create_connection((host, port),
                                              timeout=timeout)

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def call(self, method: str, params: Optional[dict] = None) -> dict:
        self._next_id += 1
        req_id = self._next_id
        try:
            protocol.send_frame_sync(self._sock, {
                "id": req_id, "method": method, "params": params or {}})
            msg = protocol.recv_frame_sync(self._sock)
        except (OSError, protocol.FrameError) as exc:
            raise ServiceError("transport", str(exc)) from exc
        return _check_response(msg, req_id)

    # -- convenience methods ------------------------------------------------

    def health(self) -> dict:
        return self.call("health")

    def stats(self) -> dict:
        return self.call("stats")

    def put_grammar(self, grammar_data: bytes,
                    tags: Sequence[str] = (),
                    meta: Optional[dict] = None) -> str:
        return self.call("grammar.put",
                         self._put_params(grammar_data, tags,
                                          meta))["hash"]

    def list_grammars(self) -> dict:
        return self.call("grammar.list")

    def get_grammar(self, ref: str) -> Tuple[bytes, dict]:
        result = self.call("grammar.get", {"ref": ref})
        return b64d(result["data"]), result["meta"]

    def compress(self, module_data: bytes, grammar_ref: str) -> bytes:
        result = self.call("compress",
                           self._compress_params(module_data,
                                                 grammar_ref))
        return b64d(result["data"])

    def decompress(self, compressed_data: bytes) -> bytes:
        result = self.call("decompress",
                           {"module": b64e(compressed_data)})
        return b64d(result["data"])

    def run_compressed(self, compressed_data: bytes,
                       args: Sequence[int] = (),
                       input_data: bytes = b"") -> Tuple[int, bytes]:
        result = self.call("run_compressed",
                           self._run_params(compressed_data, args,
                                            input_data))
        return result["code"], b64d(result["output"])


class AsyncServiceClient(_MethodMixin):
    """The same surface over asyncio streams."""

    def __init__(self, host: str = "127.0.0.1",
                 port: int = protocol.DEFAULT_PORT) -> None:
        self.host = host
        self.port = port
        self._next_id = 0
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None

    async def connect(self) -> "AsyncServiceClient":
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port)
        return self

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def __aenter__(self) -> "AsyncServiceClient":
        return await self.connect()

    async def __aexit__(self, *exc) -> None:
        await self.close()

    async def call(self, method: str,
                   params: Optional[dict] = None) -> dict:
        if self._reader is None:
            await self.connect()
        self._next_id += 1
        req_id = self._next_id
        try:
            await protocol.write_frame(self._writer, {
                "id": req_id, "method": method, "params": params or {}})
            msg = await protocol.read_frame(self._reader)
        except (OSError, protocol.FrameError) as exc:
            raise ServiceError("transport", str(exc)) from exc
        if msg is None:
            raise ServiceError("transport", "server closed the connection")
        return _check_response(msg, req_id)

    async def health(self) -> dict:
        return await self.call("health")

    async def stats(self) -> dict:
        return await self.call("stats")

    async def put_grammar(self, grammar_data: bytes,
                          tags: Sequence[str] = (),
                          meta: Optional[dict] = None) -> str:
        result = await self.call(
            "grammar.put", self._put_params(grammar_data, tags, meta))
        return result["hash"]

    async def list_grammars(self) -> dict:
        return await self.call("grammar.list")

    async def get_grammar(self, ref: str) -> Tuple[bytes, dict]:
        result = await self.call("grammar.get", {"ref": ref})
        return b64d(result["data"]), result["meta"]

    async def compress(self, module_data: bytes,
                       grammar_ref: str) -> bytes:
        result = await self.call(
            "compress", self._compress_params(module_data, grammar_ref))
        return b64d(result["data"])

    async def decompress(self, compressed_data: bytes) -> bytes:
        result = await self.call("decompress",
                                 {"module": b64e(compressed_data)})
        return b64d(result["data"])

    async def run_compressed(self, compressed_data: bytes,
                             args: Sequence[int] = (),
                             input_data: bytes = b"") -> Tuple[int, bytes]:
        result = await self.call(
            "run_compressed",
            self._run_params(compressed_data, args, input_data))
        return result["code"], b64d(result["output"])
