"""The asyncio compression server.

Request lifecycle for a ``compress`` call::

    connection -> frame -> admission control -> per-grammar queue
       -> micro-batch -> thread pool (tiling DP) -> response frame

Admission control is two-layered, per the load-shedding playbook: a
high-water mark on accepted-but-unfinished requests *rejects* new work
with an ``overloaded`` error the moment the backlog is past it (bounded
queue, so latency stays bounded), and a semaphore *caps* how many
batches actually occupy executor threads at once.  Compression requests
for the same grammar are micro-batched: the per-grammar worker waits
``batch_window`` seconds after the first job, drains whatever else has
queued, and runs the whole batch through one :class:`Compressor` whose
:class:`DerivationCache` is shared across batches — repeated blocks
across *different* client programs hit the warm cache.

Every request is bounded by ``request_timeout``; on expiry the client
gets a structured ``timeout`` error instead of a hung socket (the
underlying computation is left to finish in its thread — Python threads
cannot be killed — but its result is discarded).  A request envelope may
carry a ``deadline`` (seconds of client budget remaining); the server
clamps its own timeout to it, so work the client has already given up on
is cut off rather than computed into the void.

``serve_forever`` installs SIGTERM/SIGINT handlers that begin a *drain*:
in-flight requests finish, new work (and clients that connect mid-drain)
get a structured, retryable ``shutting_down`` error frame — never a
silent connection reset — and only then does the listener close.

Resilience: the registry is integrity-scanned (quarantine + repair)
before the first byte is served, and ``run_compressed`` runs behind a
per-grammar circuit breaker — an unexpected compiled-engine fault falls
back to the reference interpreter for that request (``fallback``), and a
grammar that keeps faulting is quarantined so requests skip the compiled
engine entirely (``degraded``) until a cooldown probe succeeds.  Both
are surfaced by the ``stats`` method.
"""

from __future__ import annotations

import asyncio
import os
import signal
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Tuple

import hashlib

from .. import faults
from ..bytecode.module import Module
from ..bytecode.validate import ValidationError
from ..coding.model import ModelMissingError
from ..compress.compressor import Compressor
from ..compress.container import CONTAINER_FORMATS
from ..compress.decompress import decompress_module
from ..grammar.serialize import encode_grammar_compact
from ..interp.compiled import CompiledEngine
from ..interp.interp2 import Interpreter2
from ..interp.native import run_native
from ..interp.runtime import run_program
from ..interp.sandbox import (
    CRASH_SIGNALS,
    NativeCrashError,
    NativeHangError,
    NativeSandbox,
    request_digest,
)
from ..registry import GrammarRegistry, RegistryError
from ..registry.registry import poison_key
from ..storage import (
    StorageError,
    load_any,
    load_compressed,
    load_module,
    save_compressed,
    save_module,
)
from . import protocol
from .breaker import CircuitBreaker
from .metrics import ServiceMetrics
from .protocol import FrameError, ServiceError, b64d

__all__ = ["CompressionService", "ServiceError"]


class _Job:
    """One queued compression request awaiting its batch."""

    __slots__ = ("module_data", "format", "future", "enqueued")

    def __init__(self, module_data: bytes, format: str,
                 future: "asyncio.Future") -> None:
        self.module_data = module_data
        self.format = format
        self.future = future
        self.enqueued = time.monotonic()


class _GrammarWorker:
    """Per-grammar micro-batcher: queue + shared compressor + task."""

    def __init__(self, service: "CompressionService", digest: str,
                 compressor: Compressor) -> None:
        self.service = service
        self.digest = digest
        self.compressor = compressor
        self.queue: "asyncio.Queue[_Job]" = asyncio.Queue()
        self.batches = 0
        self.jobs = 0
        self.task = asyncio.get_running_loop().create_task(
            self._run(), name=f"grammar-worker-{digest[:8]}")

    async def _run(self) -> None:
        svc = self.service
        while True:
            batch = [await self.queue.get()]
            if svc.batch_window > 0:
                # Let near-simultaneous requests coalesce: the window is
                # tiny next to compression time but long next to frame
                # parsing, so concurrent clients land in one batch.
                await asyncio.sleep(svc.batch_window)
            while len(batch) < svc.max_batch:
                try:
                    batch.append(self.queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            async with svc._inflight:
                results = await asyncio.get_running_loop().run_in_executor(
                    svc._executor, self._compress_batch,
                    [(job.module_data, job.format) for job in batch])
            self.batches += 1
            self.jobs += len(batch)
            svc.metrics.observe_batch(len(batch))
            for job, (err, payload) in zip(batch, results):
                if job.future.done():  # timed out or client went away
                    continue
                if err is None:
                    job.future.set_result(payload)
                else:
                    job.future.set_exception(err)

    def _compress_batch(self, jobs: List[Tuple[bytes, str]],
                        ) -> List[Tuple]:
        """Runs on an executor thread.  One compressor, warm cache; a bad
        module fails its own job, never the batch."""
        out: List[Tuple] = []
        for data, format in jobs:
            try:
                try:
                    module = load_module(data)
                except Exception as exc:  # noqa: BLE001 — client bytes
                    raise ServiceError(
                        protocol.E_BAD_REQUEST,
                        f"not a valid RBC1 module: {exc}") from None
                cmod = self.compressor.compress_module(module)
                try:
                    payload = save_compressed(cmod, format=format)
                except ModelMissingError as exc:
                    # Retryable by contract: retraining and re-tagging
                    # the grammar fixes it without a client change.
                    raise ServiceError(protocol.E_MODEL_MISSING,
                                       str(exc)) from None
                out.append((None, {
                    "data": payload,
                    "grammar": self.digest,
                    "format": format,
                    "original_code_bytes": module.code_bytes,
                    "compressed_code_bytes": cmod.code_bytes,
                    "coded_bytes": len(payload),
                }))
            except ServiceError as exc:
                out.append((exc, None))
            except (StorageError, ValidationError, ValueError) as exc:
                out.append((ServiceError(protocol.E_BAD_REQUEST,
                                         str(exc)), None))
            except Exception as exc:  # noqa: BLE001 — isolate the batch
                out.append((ServiceError(protocol.E_INTERNAL,
                                         repr(exc)), None))
        return out


class CompressionService:
    """See module docstring.

    ``high_water`` bounds accepted-but-unfinished work requests (the
    overload trip wire); ``max_inflight`` caps concurrently executing
    batches and sizes the thread pool; ``batch_window`` is the
    coalescing delay; ``cache_size`` sizes each grammar's shared
    derivation cache.
    """

    def __init__(self, registry: GrammarRegistry, *,
                 max_inflight: int = 4,
                 high_water: int = 64,
                 request_timeout: float = 30.0,
                 batch_window: float = 0.002,
                 max_batch: int = 64,
                 cache_size: int = 4096,
                 breaker_threshold: int = 3,
                 breaker_cooldown: float = 30.0,
                 integrity_scan: bool = True,
                 native_isolation: str = "auto",
                 exec_budget: int = 0,
                 native_watchdog: float = 10.0) -> None:
        if native_isolation not in ("auto", "sandbox", "inproc"):
            raise ValueError(
                f"native_isolation must be 'auto', 'sandbox' or 'inproc',"
                f" not {native_isolation!r}")
        self.registry = registry
        self.max_inflight = max_inflight
        self.high_water = high_water
        self.request_timeout = request_timeout
        self.batch_window = batch_window
        self.max_batch = max_batch
        self.cache_size = cache_size
        self.integrity_scan = integrity_scan
        # "auto" resolves to the sandbox: containment by default, and
        # the pooled helper keeps the happy-path cost to one pipe
        # round-trip (gated by benchmarks/test_interp_speed.py).
        self.native_isolation = ("sandbox" if native_isolation == "auto"
                                 else native_isolation)
        self.exec_budget = int(exec_budget or 0)
        self.native_watchdog = float(native_watchdog)
        self._sandbox: Optional[NativeSandbox] = None
        self._sandbox_lock = threading.Lock()
        self.startup_report: Optional[Dict] = None
        self.engine_breaker = CircuitBreaker(threshold=breaker_threshold,
                                             cooldown=breaker_cooldown)
        self.metrics = ServiceMetrics()
        self._pending = 0
        self._draining = False
        self._workers: Dict[str, _GrammarWorker] = {}
        self._worker_lock: Optional[asyncio.Lock] = None
        self._inflight: Optional[asyncio.Semaphore] = None
        self._executor: Optional[ThreadPoolExecutor] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._stop_requested: Optional[asyncio.Event] = None
        self._idle: Optional[asyncio.Event] = None
        self._writers: set = set()

    # -- lifecycle ----------------------------------------------------------

    @property
    def port(self) -> int:
        """The bound port (useful after binding port 0)."""
        return self._server.sockets[0].getsockname()[1]

    async def start(self, host: str = "127.0.0.1",
                    port: int = protocol.DEFAULT_PORT, *,
                    unix_path: Optional[str] = None) -> None:
        """Bind and start serving; ``unix_path`` binds a Unix domain
        socket instead of TCP (the fleet's dispatcher-to-worker hop)."""
        if self.integrity_scan:
            # Self-heal before serving: quarantine corrupt objects,
            # regenerate metadata, drop dangling tags, reap crash debris.
            self.startup_report = self.registry.startup_scan()
        else:
            # Even without the full scan, convert native-run intents
            # orphaned by a crashed predecessor into poison verdicts —
            # this is what quarantines an in-process crash after one
            # respawn (fleet workers skip the full scan; the glob over
            # the quarantine dir is cheap).
            self.registry.scan_native_intents()
        self._inflight = asyncio.Semaphore(self.max_inflight)
        self._worker_lock = asyncio.Lock()
        self._stop_requested = asyncio.Event()
        self._idle = asyncio.Event()
        self._idle.set()
        self._executor = ThreadPoolExecutor(
            max_workers=self.max_inflight,
            thread_name_prefix="repro-service")
        if unix_path is not None:
            self._server = await asyncio.start_unix_server(
                self._handle_conn, path=unix_path)
        else:
            self._server = await asyncio.start_server(
                self._handle_conn, host, port)

    async def serve_forever(self, host: str = "127.0.0.1",
                            port: int = protocol.DEFAULT_PORT) -> None:
        """Run until SIGTERM/SIGINT, then drain and return."""
        await self.start(host, port)
        await self.serve_until_stopped()

    async def serve_until_stopped(self) -> None:
        """After :meth:`start`: install signal handlers, block until a
        shutdown is requested, then drain and return."""
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, self._stop_requested.set)
            except (NotImplementedError, RuntimeError):
                pass  # non-Unix loop or non-main thread: rely on stop()
        await self._stop_requested.wait()
        await self.stop()

    def request_shutdown(self) -> None:
        """Ask ``serve_forever`` to drain and exit (signal-safe path is
        the installed handler; this is the programmatic one)."""
        if self._stop_requested is not None:
            self._stop_requested.set()

    async def stop(self, grace: float = 30.0) -> None:
        """Drain in-flight requests, then stop accepting and tear down.

        The listener stays open through the drain on purpose: a client
        that connects mid-drain gets a structured, retryable
        ``shutting_down`` error frame (and `health` reports
        ``draining``), never a silent connection reset.
        """
        self._draining = True
        try:
            await asyncio.wait_for(self._idle.wait(), grace)
        except asyncio.TimeoutError:
            pass  # grace expired: abandon stragglers
        # let drained responses flush through their connection tasks
        # before tearing anything down, then hang up on idle clients
        await asyncio.sleep(0.05)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for writer in list(self._writers):
            writer.close()
        for worker in self._workers.values():
            worker.task.cancel()
        if self._workers:
            await asyncio.gather(
                *(w.task for w in self._workers.values()),
                return_exceptions=True)
        self._workers.clear()
        if self._executor is not None:
            self._executor.shutdown(wait=False)
        if self._sandbox is not None:
            self._sandbox.close()
            self._sandbox = None

    # -- connection handling ------------------------------------------------

    async def _handle_conn(self, reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
        self._writers.add(writer)
        try:
            while True:
                try:
                    item = await protocol.read_message(reader)
                except FrameError as exc:
                    # Protocol violation: tell the peer what went wrong
                    # with one structured error frame (it cannot carry a
                    # request id — the request never parsed), then drop
                    # the possibly-desynced connection.
                    try:
                        await protocol.write_message(
                            writer, protocol.error_body(
                                None, protocol.E_BAD_REQUEST,
                                f"unreadable frame: {exc}"))
                    except (ConnectionError, OSError):
                        pass
                    break
                if item is None:
                    break
                msg, binary = item
                response = await self._handle_request(msg)
                try:
                    # answer in the framing the request arrived in
                    await protocol.write_message(writer, response,
                                                 binary=binary)
                except (ConnectionError, FrameError):
                    break
        except asyncio.CancelledError:
            pass  # loop teardown cancelling idle readers: end quietly
        finally:
            self._writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _handle_request(self, msg: dict) -> dict:
        req_id = msg.get("id")
        method = msg.get("method")
        params = msg.get("params") or {}
        deadline = msg.get("deadline")
        if not isinstance(deadline, (int, float)) \
                or isinstance(deadline, bool):
            deadline = None
        start = time.monotonic()
        if not isinstance(method, str) or not isinstance(params, dict):
            self.metrics.observe_request(
                str(method), protocol.E_BAD_REQUEST,
                time.monotonic() - start)
            return protocol.error_body(
                req_id, protocol.E_BAD_REQUEST,
                "request needs a string 'method' and object 'params'")
        try:
            result = await self._dispatch(method, params, deadline)
            outcome = "ok"
            response = protocol.result_body(req_id, result)
        except ServiceError as exc:
            outcome = exc.code
            response = protocol.error_body(req_id, exc.code, exc.message)
        except Exception as exc:  # noqa: BLE001 — never kill the reader
            outcome = protocol.E_INTERNAL
            response = protocol.error_body(
                req_id, protocol.E_INTERNAL, repr(exc))
        self.metrics.observe_request(method, outcome,
                                     time.monotonic() - start)
        return response

    # -- dispatch -----------------------------------------------------------

    _ADMIN = frozenset(["health", "stats", "grammar.list", "grammar.get"])
    _WORK = frozenset(["compress", "decompress", "run_compressed",
                       "grammar.put"])

    async def _dispatch(self, method: str, params: dict,
                        deadline: Optional[float] = None) -> dict:
        if method in self._ADMIN:
            handler = getattr(self, "_m_" + method.replace(".", "_"))
            return await handler(params)
        if method not in self._WORK:
            raise ServiceError(protocol.E_BAD_REQUEST,
                               f"unknown method {method!r}")
        # admission control for work methods
        if self._draining:
            raise ServiceError(protocol.E_SHUTTING_DOWN,
                               "server is draining")
        if self._pending >= self.high_water:
            raise ServiceError(
                protocol.E_OVERLOADED,
                f"backlog {self._pending} at high-water mark "
                f"{self.high_water}; retry with backoff")
        # deadline propagation: never compute longer than the client
        # will wait for the answer
        timeout = self.request_timeout
        if deadline is not None:
            timeout = min(timeout, max(0.0, float(deadline)))
            if timeout <= 0:
                raise ServiceError(protocol.E_TIMEOUT,
                                   "client deadline already exhausted")
        self._pending += 1
        self._idle.clear()
        try:
            handler = getattr(self, "_m_" + method.replace(".", "_"))
            return await asyncio.wait_for(handler(params), timeout)
        except asyncio.TimeoutError:
            raise ServiceError(
                protocol.E_TIMEOUT,
                f"request exceeded {timeout:g}s") from None
        finally:
            self._pending -= 1
            if self._pending == 0:
                self._idle.set()

    # -- param helpers ------------------------------------------------------

    @staticmethod
    def _data_param(params: dict, key: str = "data") -> bytes:
        value = params.get(key)
        if isinstance(value, (bytes, bytearray, memoryview)):
            return bytes(value)  # binary frame: the payload arrived raw
        if not isinstance(value, str):
            raise ServiceError(protocol.E_BAD_REQUEST,
                               f"missing binary param {key!r}")
        try:
            return b64d(value)
        except FrameError as exc:
            raise ServiceError(protocol.E_BAD_REQUEST, str(exc)) from None

    @staticmethod
    def _ref_param(params: dict, key: str = "grammar") -> str:
        value = params.get(key)
        if not isinstance(value, str) or not value:
            raise ServiceError(protocol.E_BAD_REQUEST,
                               f"missing grammar reference param {key!r}")
        return value

    async def _in_executor(self, fn, *args):
        return await asyncio.get_running_loop().run_in_executor(
            self._executor, fn, *args)

    def _native_sandbox(self) -> NativeSandbox:
        """The lazily-spawned, pooled helper (shared by all requests;
        NativeSandbox serializes its own pipe traffic)."""
        with self._sandbox_lock:
            if self._sandbox is None:
                self._sandbox = NativeSandbox(timeout=self.native_watchdog)
            return self._sandbox

    async def _worker_for(self, ref: str) -> _GrammarWorker:
        try:
            digest = self.registry.resolve(ref)
        except RegistryError as exc:
            raise ServiceError(protocol.E_NOT_FOUND, str(exc)) from None
        worker = self._workers.get(digest)
        if worker is not None:
            return worker
        async with self._worker_lock:
            worker = self._workers.get(digest)
            if worker is None:
                # One precompiled program per digest: the worker's
                # compressor, batching, and derivation cache all hang
                # off the registry's shared GrammarProgram instance.
                program = await self._in_executor(
                    self.registry.program, digest)
                worker = _GrammarWorker(
                    self, digest,
                    Compressor(program.grammar,
                               cache_size=self.cache_size))
                self._workers[digest] = worker
            return worker

    # -- methods ------------------------------------------------------------

    async def _m_health(self, params: dict) -> dict:
        return {
            "status": "draining" if self._draining else "ok",
            "uptime_seconds": time.monotonic() - self.metrics.started,
            "pending": self._pending,
            "high_water": self.high_water,
            "grammars_loaded": len(self._workers),
        }

    async def _m_stats(self, params: dict) -> dict:
        snap = self.metrics.snapshot()
        snap["pending"] = self._pending
        snap["grammars"] = {
            digest[:12]: {
                "batches": worker.batches,
                "jobs": worker.jobs,
                "derivation_cache": worker.compressor.cache_stats(),
            }
            for digest, worker in self._workers.items()
        }
        snap["registry"] = {
            "grammars": len(self.registry),
            "lru": self.registry.cache_info(),
        }
        if self.startup_report is not None:
            snap["registry"]["startup_scan"] = {
                "clean": self.startup_report.get("clean"),
                "checked": self.startup_report.get("checked"),
                "quarantined":
                    len(self.startup_report.get("quarantined", [])),
                "dangling_tags":
                    len(self.startup_report.get("dangling_tags", [])),
                "poison": self.startup_report.get("poison", 0),
                "poison_converted":
                    self.startup_report.get("poison_converted", 0),
            }
        snap["engine"] = {
            "fallback": self.metrics.engine_events.value("fallback"),
            "degraded": self.metrics.engine_events.value("degraded"),
            "native_crash":
                self.metrics.engine_events.value("native_crash"),
            "native_hang":
                self.metrics.engine_events.value("native_hang"),
            "poison_fastfail":
                self.metrics.engine_events.value("poison_fastfail"),
            "isolation": self.native_isolation,
            "exec_budget": self.exec_budget,
            "breakers": {key[:12]: state for key, state
                         in self.engine_breaker.snapshot().items()},
            "quarantined": [key[:12] for key
                            in self.engine_breaker.open_keys()],
            "poisoned": [rec.get("key", "")[:12]
                         for rec in self.registry.poison_list()],
        }
        if self._sandbox is not None:
            snap["engine"]["sandbox"] = dict(self._sandbox.stats)
        return snap

    async def _m_grammar_list(self, params: dict) -> dict:
        grammars = await self._in_executor(self.registry.list)
        return {"grammars": grammars, "tags": self.registry.tags()}

    async def _m_grammar_get(self, params: dict) -> dict:
        ref = self._ref_param(params, "ref")
        try:
            data = await self._in_executor(self.registry.get_bytes, ref)
            meta = self.registry.meta(ref)
        except RegistryError as exc:
            raise ServiceError(protocol.E_NOT_FOUND, str(exc)) from None
        self.metrics.add_bytes("out", len(data))
        return {"data": data, "meta": meta}

    async def _m_grammar_put(self, params: dict) -> dict:
        data = self._data_param(params)
        tags = params.get("tags", [])
        if not (isinstance(tags, list)
                and all(isinstance(t, str) for t in tags)):
            raise ServiceError(protocol.E_BAD_REQUEST,
                               "'tags' must be a list of strings")
        meta = params.get("meta")
        if meta is not None and not isinstance(meta, dict):
            raise ServiceError(protocol.E_BAD_REQUEST,
                               "'meta' must be an object")
        self.metrics.add_bytes("in", len(data))

        def _put() -> str:
            return self.registry.put_bytes(data, tags=tags, meta=meta)

        try:
            digest = await self._in_executor(_put)
        except (StorageError, RegistryError, ValueError) as exc:
            raise ServiceError(protocol.E_BAD_REQUEST, str(exc)) from None
        return {"hash": digest, "meta": self.registry.meta(digest)}

    async def _m_compress(self, params: dict) -> dict:
        module_data = self._data_param(params, "module")
        format = params.get("format", "rcx1")
        if format not in CONTAINER_FORMATS:
            raise ServiceError(
                protocol.E_BAD_REQUEST,
                f"unknown container format {format!r} "
                f"(expected one of {list(CONTAINER_FORMATS)})")
        self.metrics.add_bytes("in", len(module_data))
        worker = await self._worker_for(self._ref_param(params))
        future = asyncio.get_running_loop().create_future()
        worker.queue.put_nowait(_Job(module_data, format, future))
        result = await future  # timeout applied by _dispatch's wait_for
        self.metrics.add_bytes("out", len(result["data"]))
        self.metrics.observe_compress(format, result["coded_bytes"])
        return result

    async def _m_decompress(self, params: dict) -> dict:
        data = self._data_param(params, "module")
        self.metrics.add_bytes("in", len(data))

        def _work() -> bytes:
            try:
                cmod = load_compressed(data)
            except Exception as exc:  # noqa: BLE001 — client bytes
                raise ServiceError(
                    protocol.E_BAD_REQUEST,
                    f"not a valid RCX1/RCX2 module: {exc}") from None
            return save_module(decompress_module(cmod))

        async with self._inflight:
            try:
                payload = await self._in_executor(_work)
            except (StorageError, ValidationError, ValueError) as exc:
                raise ServiceError(protocol.E_BAD_REQUEST,
                                   str(exc)) from None
        self.metrics.add_bytes("out", len(payload))
        return {"data": payload}

    async def _m_run_compressed(self, params: dict) -> dict:
        data = self._data_param(params, "module")
        self.metrics.add_bytes("in", len(data))
        args = params.get("args", [])
        if not (isinstance(args, list)
                and all(isinstance(a, int) for a in args)):
            raise ServiceError(protocol.E_BAD_REQUEST,
                               "'args' must be a list of integers")
        input_data = (self._data_param(params, "input")
                      if "input" in params else b"")
        engine = params.get("engine", "compiled")
        if engine not in ("compiled", "reference", "native"):
            raise ServiceError(
                protocol.E_BAD_REQUEST,
                "'engine' must be 'compiled', 'reference' or 'native'")
        # The effective dispatch budget: the server-wide cap, tightened
        # (never loosened) by a per-request 'budget' param.
        budget = self.exec_budget
        req_budget = params.get("budget", 0)
        if not isinstance(req_budget, int) or isinstance(req_budget, bool) \
                or req_budget < 0:
            raise ServiceError(protocol.E_BAD_REQUEST,
                               "'budget' must be a non-negative integer")
        if req_budget:
            budget = min(budget, req_budget) if budget else req_budget

        def _run_compiled(program) -> Tuple[str, int, bytes]:
            """Compiled engine behind the per-grammar circuit breaker;
            unexpected engine faults fall back to the reference
            interpreter (a fresh machine — no partial state leaks)."""
            key = hashlib.sha256(
                encode_grammar_compact(program.grammar)).hexdigest()
            if not self.engine_breaker.allow(key):
                # quarantined: skip the doomed attempt entirely
                self.metrics.engine_events.inc("degraded")
                code, output = run_program(program, Interpreter2(program),
                                           *args, input_data=input_data,
                                           budget=budget)
                return "reference_degraded", code, output
            try:
                code, output = run_program(program,
                                           CompiledEngine(program),
                                           *args, input_data=input_data,
                                           budget=budget)
            except RuntimeError:
                # Trap / machine fault: the *program's* fault, identical
                # on both engines by the equivalence suite — not an
                # engine failure.
                self.engine_breaker.record_success(key)
                raise
            except ServiceError:
                raise
            except Exception:  # noqa: BLE001 — engine fault: fall back
                self.engine_breaker.record_failure(key)
                self.metrics.engine_events.inc("fallback")
                code, output = run_program(program, Interpreter2(program),
                                           *args, input_data=input_data,
                                           budget=budget)
                return "reference_fallback", code, output
            self.engine_breaker.record_success(key)
            return "compiled", code, output

        def _native_inproc(program, pkey: str, gkey: str,
                           rdigest: str) -> Tuple[int, bytes]:
            """In-process native run, journaled: the intent sidecar is
            on disk before the engine gets the request, so a crash that
            kills this worker converts to a poison verdict at the next
            startup (``scan_native_intents``) — quarantine within one
            respawn even without the sandbox."""
            self.registry.record_native_intent(
                pkey, content_key=gkey, request_digest=rdigest)
            try:
                plane = faults.ACTIVE
                if plane is not None:
                    rule = plane.decide("native.crash")
                    if rule is not None:
                        # The real failure, end to end: this worker dies
                        # on the signal with the intent journaled.
                        os.kill(os.getpid(), CRASH_SIGNALS.get(
                            rule.mode or "segv", signal.SIGSEGV))
                return run_native(program, *args, input_data=input_data,
                                  budget=budget)
            finally:
                # Reached on every *Python-visible* exit, including
                # traps; a fatal signal skips it and leaves the intent.
                self.registry.clear_native_intent(pkey)

        def _run_native(program) -> Tuple[str, int, bytes]:
            """Native engine: quarantine check, then the sandboxed (or
            journaled in-process) run, behind its own per-grammar
            breaker slot.

            Outcomes: a poison hit or a fresh crash/hang raises a
            non-retryable ``poison_input`` (and feeds the breaker, so
            a grammar whose requests keep breaking the engine degrades
            to the compiled path for *healthy* traffic too); a missing
            compiler or failed build/load falls back to the compiled
            Python path; program traps propagate — identical on every
            engine by the four-engine equivalence suite."""
            gkey = hashlib.sha256(
                encode_grammar_compact(program.grammar)).hexdigest()
            key = "native:" + gkey
            rdigest = request_digest(data, args, input_data)
            pkey = poison_key(gkey, rdigest)
            verdict = self.registry.check_poison(pkey)
            if verdict is not None:
                # Known poison: fail fast, before the engine (or even
                # the breaker) sees the request again.
                self.metrics.engine_events.inc("poison_fastfail")
                raise ServiceError(
                    protocol.E_POISON_INPUT,
                    f"request {rdigest[:12]} is quarantined after a "
                    f"native-engine {verdict.get('verdict', 'crash')}: "
                    f"{verdict.get('detail', '')}".rstrip(": "))
            if not self.engine_breaker.allow(key):
                self.metrics.engine_events.inc("degraded")
                _, code, output = _run_compiled(program)
                return "compiled_degraded", code, output
            try:
                if self.native_isolation == "sandbox":
                    run = self._native_sandbox().run(
                        data, args, input_data, budget=budget,
                        content_key=gkey)
                    code, output = run.code, run.output
                else:
                    code, output = _native_inproc(program, pkey, gkey,
                                                  rdigest)
            except RuntimeError:
                # Trap / machine fault: the program's own fault.
                self.engine_breaker.record_success(key)
                raise
            except ServiceError:
                raise
            except (NativeCrashError, NativeHangError) as exc:
                # The request broke the engine: record the verdict
                # (durable, fleet-wide), count it, feed the breaker,
                # and fail the client non-retryably.
                what = ("hang" if isinstance(exc, NativeHangError)
                        else "crash")
                self.registry.record_poison(
                    pkey, what, content_key=gkey,
                    request_digest=rdigest, detail=str(exc))
                self.engine_breaker.record_failure(key)
                self.metrics.engine_events.inc(f"native_{what}")
                raise ServiceError(protocol.E_POISON_INPUT,
                                   str(exc)) from None
            except Exception:  # noqa: BLE001 — build or engine fault
                self.engine_breaker.record_failure(key)
                self.metrics.engine_events.inc("fallback")
                _, code, output = _run_compiled(program)
                return "compiled_fallback", code, output
            self.engine_breaker.record_success(key)
            return "native", code, output

        def _work() -> Tuple[str, int, bytes]:
            try:
                program = load_any(data)
            except Exception as exc:  # noqa: BLE001 — client bytes
                raise ServiceError(
                    protocol.E_BAD_REQUEST,
                    f"not a valid module: {exc}") from None
            if isinstance(program, Module):
                raise ServiceError(
                    protocol.E_BAD_REQUEST,
                    "run_compressed needs an RCX1 compressed module")
            if engine == "reference":
                code, output = run_program(program, Interpreter2(program),
                                           *args, input_data=input_data,
                                           budget=budget)
                return "reference", code, output
            if engine == "native":
                return _run_native(program)
            return _run_compiled(program)

        async with self._inflight:
            try:
                used, code, output = await self._in_executor(_work)
            except (StorageError, ValidationError, ValueError) as exc:
                raise ServiceError(protocol.E_BAD_REQUEST,
                                   str(exc)) from None
            except RuntimeError as exc:  # Trap / machine fault
                raise ServiceError(protocol.E_TRAP, str(exc)) from None
        self.metrics.add_bytes("out", len(output))
        return {"code": code, "output": output, "engine": used}
