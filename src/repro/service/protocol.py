"""Wire protocol: length-prefixed JSON frames, plus binary payload frames.

Two frame kinds share one 4-byte big-endian length word:

* **JSON frame** (legacy, high bit clear): the word is the byte length of
  a UTF-8 JSON body.  Requests carry ``{"id", "method", "params"}``;
  responses echo the id with either ``{"ok": true, "result": ...}`` or
  ``{"ok": false, "error": {"code", "message"}}``.  Binary payloads
  (module and grammar files) travel base64-encoded under ``data`` keys.
* **Binary frame** (high bit set): the low 31 bits are the body length;
  the body is a second 4-byte big-endian *header length*, that many bytes
  of UTF-8 JSON header, then raw payload bytes.  The header is the same
  envelope, minus one bulk field: ``"bin"`` names the ``params`` /
  ``result`` key the payload binds to, so module bytes cross the wire
  exactly once, with no base64 inflation and no JSON string copy.

::

    JSON:    [u32 len          ][ UTF-8 JSON body ...................]
    binary:  [u32 0x8000_0000|n][u32 hlen][ header JSON ][ payload ...]
                                 \\------------- n bytes -------------/

Readers accept both kinds on any connection and report which one arrived
(:func:`read_message`, :func:`recv_message_sync`), so a server answers
each request in the framing the client chose — new binary clients and
legacy JSON-only clients coexist on the same port.  Writers take the
mode explicitly (:func:`write_message`, :func:`send_message_sync`); in
either mode, ``params``/``result`` values of type :class:`bytes` are
normalised by the codec — the largest becomes the binary payload, any
others (and everything in JSON mode) are base64-encoded.

Frames are capped at 64 MiB: a bad length prefix must not make either
side allocate gigabytes.
"""

from __future__ import annotations

import asyncio
import base64
import json
import socket
import struct
from typing import Optional, Tuple

from .. import faults

__all__ = [
    "DEFAULT_PORT", "MAX_FRAME", "BINARY_BIT", "FrameError", "ServiceError",
    "RETRYABLE",
    "encode_frame", "encode_message", "decode_body", "decode_binary_body",
    "read_frame", "write_frame", "read_message", "write_message",
    "recv_frame_sync", "send_frame_sync",
    "recv_message_sync", "send_message_sync",
    "b64e", "b64d",
    "error_body", "result_body",
]

DEFAULT_PORT = 7327
MAX_FRAME = 64 << 20
#: high bit of the length word: the frame is binary (header + payload)
BINARY_BIT = 0x80000000

# error codes, used across server and clients
E_OVERLOADED = "overloaded"
E_TIMEOUT = "timeout"
E_BAD_REQUEST = "bad_request"
E_NOT_FOUND = "not_found"
E_INTERNAL = "internal"
E_SHUTTING_DOWN = "shutting_down"
E_TRAP = "trap"
E_MODEL_MISSING = "model_missing"
#: a fleet worker died (or was restarted) while holding the request; the
#: work methods are idempotent, so the dispatcher tells the client to
#: just send it again — the supervisor is already respawning the worker.
E_WORKER_LOST = "worker_lost"
#: the request previously crashed or hung the native engine and is
#: quarantined; deliberately NOT retryable — the verdict is durable, so
#: resending the identical request can only fail the same way.
E_POISON_INPUT = "poison_input"


class FrameError(ConnectionError):
    """Malformed frame (bad length, oversized, or invalid JSON)."""


#: error codes where retrying after backoff is reasonable
#: (``model_missing`` clears once the grammar is retrained and
#: re-registered under the same tag; ``worker_lost`` clears as soon as
#: the fleet supervisor restarts the dead worker)
RETRYABLE = frozenset([E_OVERLOADED, E_TIMEOUT, E_SHUTTING_DOWN,
                       E_MODEL_MISSING, E_WORKER_LOST])


class ServiceError(Exception):
    """A structured request failure.

    Raised by handlers on the server (where it becomes an error frame)
    and by clients when a response carries an error body — the ``code``
    survives the wire in both directions.
    """

    def __init__(self, code: str, message: str) -> None:
        super().__init__(f"{code}: {message}")
        self.code = code
        self.message = message

    @property
    def retryable(self) -> bool:
        return self.code in RETRYABLE


def b64e(data: bytes) -> str:
    return base64.b64encode(data).decode("ascii")


def b64d(text: str) -> bytes:
    try:
        return base64.b64decode(text, validate=True)
    except (ValueError, TypeError) as exc:
        raise FrameError(f"invalid base64 payload: {exc}") from exc


def encode_frame(obj: dict) -> bytes:
    """A legacy JSON frame; ``obj`` must already be pure JSON."""
    body = json.dumps(obj, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME:
        raise FrameError(f"frame too large ({len(body)} bytes)")
    return struct.pack(">I", len(body)) + body


#: envelope sections whose values may be raw bytes
_SECTIONS = ("params", "result")
_BYTES = (bytes, bytearray, memoryview)


def encode_message(obj: dict, binary: bool = False) -> bytes:
    """Encode an envelope whose ``params``/``result`` may hold raw bytes.

    JSON mode base64-encodes every bytes value (producing exactly the
    legacy wire format).  Binary mode moves the *largest* bytes value
    out of the header as the frame's raw payload (recorded under
    ``"bin"``) and base64-encodes any others — per envelope there is at
    most one bulk field, so the hot path never base64s at all.
    """
    out = dict(obj)
    payload = b""
    bin_key = None
    for section in _SECTIONS:
        inner = out.get(section)
        if not isinstance(inner, dict):
            continue
        keys = [k for k, v in inner.items() if isinstance(v, _BYTES)]
        if not keys:
            continue
        inner = dict(inner)
        if binary and bin_key is None:
            bin_key = max(keys, key=lambda k: len(inner[k]))
            payload = bytes(inner.pop(bin_key))
            keys.remove(bin_key)
        for key in keys:
            inner[key] = b64e(bytes(inner[key]))
        out[section] = inner
    if not binary:
        return encode_frame(out)
    if bin_key is not None:
        out["bin"] = bin_key
    header = json.dumps(out, separators=(",", ":")).encode("utf-8")
    body_len = 4 + len(header) + len(payload)
    if body_len > MAX_FRAME:
        raise FrameError(f"frame too large ({body_len} bytes)")
    return struct.pack(">II", BINARY_BIT | body_len, len(header)) \
        + header + payload


def decode_body(body: bytes) -> dict:
    try:
        obj = json.loads(body.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise FrameError(f"invalid JSON frame: {exc}") from exc
    if not isinstance(obj, dict):
        raise FrameError("frame must be a JSON object")
    return obj


def decode_binary_body(body: bytes) -> dict:
    """Parse a binary frame body: header-length word, header, payload.

    The payload binds to the header field named by ``"bin"`` (in
    ``result`` for responses, ``params`` for requests); a length
    mismatch or an unbound payload is a :class:`FrameError` — the
    server answers those with a structured ``bad_request`` frame.
    """
    if len(body) < 4:
        raise FrameError("binary frame too short for its header length")
    (header_len,) = struct.unpack(">I", body[:4])
    if 4 + header_len > len(body):
        raise FrameError(
            f"binary header length {header_len} exceeds the "
            f"{len(body) - 4} bytes present")
    msg = decode_body(body[4:4 + header_len])
    payload = body[4 + header_len:]
    key = msg.pop("bin", None)
    if key is None:
        if payload:
            raise FrameError(
                f"{len(payload)} payload bytes with no 'bin' binding")
        return msg
    if not isinstance(key, str):
        raise FrameError("'bin' must name a payload field")
    result = msg.get("result")
    if isinstance(result, dict):
        result[key] = payload
    else:
        params = msg.get("params")
        if not isinstance(params, dict):
            params = msg["params"] = {}
        params[key] = payload
    return msg


def result_body(req_id, result: dict) -> dict:
    return {"id": req_id, "ok": True, "result": result}


def error_body(req_id, code: str, message: str) -> dict:
    return {"id": req_id, "ok": False,
            "error": {"code": code, "message": message}}


# -- asyncio side -----------------------------------------------------------
#
# The fault sites live here, on the server-side framing layer only (the
# blocking client functions below carry none): an activated
# ``repro.faults`` plane can garble, truncate, delay, or drop frames to
# simulate a hostile network.  Inert cost is one module-attribute check
# per frame.

async def _read_fault(rule) -> None:
    """Apply a fired ``service.frame.read`` rule: the inbound bytes were
    damaged in flight."""
    if rule.mode == "delay":
        await asyncio.sleep(rule.arg if rule.arg is not None else 0.05)
        return
    if rule.mode == "disconnect":
        raise FrameError("injected fault: connection torn down mid-read")
    # default / "garbage": what arrived does not parse as a frame
    raise FrameError("injected fault: garbage frame received")


async def _write_fault(rule, writer: asyncio.StreamWriter,
                       frame: bytes) -> Optional[bytes]:
    """Apply a fired ``service.frame.write`` rule; returns the (possibly
    damaged) frame still to be written, or ``None`` if nothing is."""
    if rule.mode == "delay":
        await asyncio.sleep(rule.arg if rule.arg is not None else 0.05)
        return frame
    if rule.mode == "truncate":
        writer.write(frame[:max(1, len(frame) // 2)])
        try:
            await writer.drain()
        except (ConnectionError, OSError):
            pass
        raise FrameError("injected fault: frame truncated mid-write")
    if rule.mode == "disconnect":
        raise FrameError("injected fault: connection torn down mid-write")
    # default / "garbage": clobber the start of the body, so the peer is
    # guaranteed a structural parse failure rather than silently
    # corrupted payload bytes (payload integrity is the CRC trailer's
    # job, framing integrity is this site's).
    if faults.ACTIVE is not None and len(frame) > 4:
        body = bytearray(frame)
        for i in range(4, min(12, len(body))):
            body[i] = 0xFF
        return bytes(body)
    return frame


async def read_message(reader: asyncio.StreamReader
                       ) -> Optional[Tuple[dict, bool]]:
    """Next frame as ``(message, was_binary)``, or ``None`` on clean EOF
    at a frame boundary."""
    if faults.ACTIVE is not None:
        rule = faults.ACTIVE.decide("service.frame.read")
        if rule is not None:
            await _read_fault(rule)
    try:
        header = await reader.readexactly(4)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise FrameError("connection closed mid-frame") from exc
    (word,) = struct.unpack(">I", header)
    binary = bool(word & BINARY_BIT)
    length = word & ~BINARY_BIT
    if length > MAX_FRAME:
        raise FrameError(f"frame too large ({length} bytes)")
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise FrameError("connection closed mid-frame") from exc
    if binary:
        return decode_binary_body(body), True
    return decode_body(body), False


async def read_frame(reader: asyncio.StreamReader) -> Optional[dict]:
    """:func:`read_message` without the framing-mode flag."""
    item = await read_message(reader)
    return None if item is None else item[0]


async def write_message(writer: asyncio.StreamWriter, obj: dict,
                        binary: bool = False) -> None:
    frame = encode_message(obj, binary)
    if faults.ACTIVE is not None:
        rule = faults.ACTIVE.decide("service.frame.write")
        if rule is not None:
            frame = await _write_fault(rule, writer, frame)
            if frame is None:
                return
    writer.write(frame)
    await writer.drain()


async def write_frame(writer: asyncio.StreamWriter, obj: dict) -> None:
    await write_message(writer, obj, binary=False)


# -- blocking side (sync client, no asyncio dependency) ---------------------

def _recv_exact(sock: socket.socket, n: int) -> bytes:
    chunks = bytearray()
    while len(chunks) < n:
        piece = sock.recv(n - len(chunks))
        if not piece:
            raise FrameError("connection closed mid-frame")
        chunks.extend(piece)
    return bytes(chunks)


def recv_message_sync(sock: socket.socket) -> Tuple[dict, bool]:
    (word,) = struct.unpack(">I", _recv_exact(sock, 4))
    binary = bool(word & BINARY_BIT)
    length = word & ~BINARY_BIT
    if length > MAX_FRAME:
        raise FrameError(f"frame too large ({length} bytes)")
    body = _recv_exact(sock, length)
    if binary:
        return decode_binary_body(body), True
    return decode_body(body), False


def recv_frame_sync(sock: socket.socket) -> dict:
    return recv_message_sync(sock)[0]


def send_message_sync(sock: socket.socket, obj: dict,
                      binary: bool = False) -> None:
    sock.sendall(encode_message(obj, binary))


def send_frame_sync(sock: socket.socket, obj: dict) -> None:
    send_message_sync(sock, obj)
