"""Wire protocol: length-prefixed JSON frames.

A frame is a 4-byte big-endian unsigned length followed by that many
bytes of UTF-8 JSON.  Requests carry ``{"id", "method", "params"}``;
responses echo the id with either ``{"ok": true, "result": ...}`` or
``{"ok": false, "error": {"code", "message"}}``.  Binary payloads
(module and grammar files) travel base64-encoded under ``data`` keys —
JSON framing keeps the protocol introspectable and language-neutral;
the base64 overhead is irrelevant next to compression CPU time.

Frames are capped at 64 MiB: a bad length prefix must not make either
side allocate gigabytes.
"""

from __future__ import annotations

import asyncio
import base64
import json
import socket
import struct
from typing import Optional

from .. import faults

__all__ = [
    "DEFAULT_PORT", "MAX_FRAME", "FrameError", "ServiceError",
    "RETRYABLE",
    "encode_frame", "decode_body",
    "read_frame", "write_frame",
    "recv_frame_sync", "send_frame_sync",
    "b64e", "b64d",
    "error_body", "result_body",
]

DEFAULT_PORT = 7327
MAX_FRAME = 64 << 20

# error codes, used across server and clients
E_OVERLOADED = "overloaded"
E_TIMEOUT = "timeout"
E_BAD_REQUEST = "bad_request"
E_NOT_FOUND = "not_found"
E_INTERNAL = "internal"
E_SHUTTING_DOWN = "shutting_down"
E_TRAP = "trap"
E_MODEL_MISSING = "model_missing"


class FrameError(ConnectionError):
    """Malformed frame (bad length, oversized, or invalid JSON)."""


#: error codes where retrying after backoff is reasonable
#: (``model_missing`` clears once the grammar is retrained and
#: re-registered under the same tag, so clients may back off and retry)
RETRYABLE = frozenset([E_OVERLOADED, E_TIMEOUT, E_SHUTTING_DOWN,
                       E_MODEL_MISSING])


class ServiceError(Exception):
    """A structured request failure.

    Raised by handlers on the server (where it becomes an error frame)
    and by clients when a response carries an error body — the ``code``
    survives the wire in both directions.
    """

    def __init__(self, code: str, message: str) -> None:
        super().__init__(f"{code}: {message}")
        self.code = code
        self.message = message

    @property
    def retryable(self) -> bool:
        return self.code in RETRYABLE


def b64e(data: bytes) -> str:
    return base64.b64encode(data).decode("ascii")


def b64d(text: str) -> bytes:
    try:
        return base64.b64decode(text, validate=True)
    except (ValueError, TypeError) as exc:
        raise FrameError(f"invalid base64 payload: {exc}") from exc


def encode_frame(obj: dict) -> bytes:
    body = json.dumps(obj, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME:
        raise FrameError(f"frame too large ({len(body)} bytes)")
    return struct.pack(">I", len(body)) + body


def decode_body(body: bytes) -> dict:
    try:
        obj = json.loads(body.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise FrameError(f"invalid JSON frame: {exc}") from exc
    if not isinstance(obj, dict):
        raise FrameError("frame must be a JSON object")
    return obj


def result_body(req_id, result: dict) -> dict:
    return {"id": req_id, "ok": True, "result": result}


def error_body(req_id, code: str, message: str) -> dict:
    return {"id": req_id, "ok": False,
            "error": {"code": code, "message": message}}


# -- asyncio side -----------------------------------------------------------
#
# The fault sites live here, on the server-side framing layer only (the
# blocking client functions below carry none): an activated
# ``repro.faults`` plane can garble, truncate, delay, or drop frames to
# simulate a hostile network.  Inert cost is one module-attribute check
# per frame.

async def _read_fault(rule) -> None:
    """Apply a fired ``service.frame.read`` rule: the inbound bytes were
    damaged in flight."""
    if rule.mode == "delay":
        await asyncio.sleep(rule.arg if rule.arg is not None else 0.05)
        return
    if rule.mode == "disconnect":
        raise FrameError("injected fault: connection torn down mid-read")
    # default / "garbage": what arrived does not parse as a frame
    raise FrameError("injected fault: garbage frame received")


async def _write_fault(rule, writer: asyncio.StreamWriter,
                       frame: bytes) -> Optional[bytes]:
    """Apply a fired ``service.frame.write`` rule; returns the (possibly
    damaged) frame still to be written, or ``None`` if nothing is."""
    if rule.mode == "delay":
        await asyncio.sleep(rule.arg if rule.arg is not None else 0.05)
        return frame
    if rule.mode == "truncate":
        writer.write(frame[:max(1, len(frame) // 2)])
        try:
            await writer.drain()
        except (ConnectionError, OSError):
            pass
        raise FrameError("injected fault: frame truncated mid-write")
    if rule.mode == "disconnect":
        raise FrameError("injected fault: connection torn down mid-write")
    # default / "garbage": clobber the start of the JSON body, so the
    # peer is guaranteed a structural parse failure rather than silently
    # corrupted payload bytes (payload integrity is the CRC trailer's
    # job, framing integrity is this site's).
    if faults.ACTIVE is not None and len(frame) > 4:
        body = bytearray(frame)
        for i in range(4, min(12, len(body))):
            body[i] = 0xFF
        return bytes(body)
    return frame


async def read_frame(reader: asyncio.StreamReader) -> Optional[dict]:
    """Next frame, or ``None`` on clean EOF at a frame boundary."""
    if faults.ACTIVE is not None:
        rule = faults.ACTIVE.decide("service.frame.read")
        if rule is not None:
            await _read_fault(rule)
    try:
        header = await reader.readexactly(4)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise FrameError("connection closed mid-frame") from exc
    (length,) = struct.unpack(">I", header)
    if length > MAX_FRAME:
        raise FrameError(f"frame too large ({length} bytes)")
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise FrameError("connection closed mid-frame") from exc
    return decode_body(body)


async def write_frame(writer: asyncio.StreamWriter, obj: dict) -> None:
    frame = encode_frame(obj)
    if faults.ACTIVE is not None:
        rule = faults.ACTIVE.decide("service.frame.write")
        if rule is not None:
            frame = await _write_fault(rule, writer, frame)
            if frame is None:
                return
    writer.write(frame)
    await writer.drain()


# -- blocking side (sync client, no asyncio dependency) ---------------------

def _recv_exact(sock: socket.socket, n: int) -> bytes:
    chunks = bytearray()
    while len(chunks) < n:
        piece = sock.recv(n - len(chunks))
        if not piece:
            raise FrameError("connection closed mid-frame")
        chunks.extend(piece)
    return bytes(chunks)


def recv_frame_sync(sock: socket.socket) -> dict:
    (length,) = struct.unpack(">I", _recv_exact(sock, 4))
    if length > MAX_FRAME:
        raise FrameError(f"frame too large ({length} bytes)")
    return decode_body(_recv_exact(sock, length))


def send_frame_sync(sock: socket.socket, obj: dict) -> None:
    sock.sendall(encode_frame(obj))
