"""Service counters and histograms, exported by the ``stats`` method.

Deliberately dependency-free and Prometheus-shaped: monotonic counters
keyed by label tuples, and fixed-bucket cumulative histograms with sum
and count, so a scraper (or a test) can compute rates and quantile
bounds.  Everything is updated from the event loop or from executor
threads, so the mutators take a lock — contention is negligible next to
the work being measured.
"""

from __future__ import annotations

import copy
import threading
import time
from typing import Dict, List, Sequence, Tuple

__all__ = ["Counter", "Histogram", "ServiceMetrics", "merge_stats"]

# request latency, seconds: sub-ms to tens of seconds
LATENCY_BUCKETS = (0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
                   0.25, 0.5, 1.0, 2.5, 5.0, 10.0)
# jobs per compression batch
BATCH_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0)
# serialized compressed-container bytes per compress response
CODED_BYTES_BUCKETS = (256.0, 1024.0, 4096.0, 16384.0, 65536.0,
                       262144.0, 1048576.0)


class Counter:
    """Monotonic counter with string labels (joined with ``|``)."""

    def __init__(self) -> None:
        self._values: Dict[str, int] = {}
        self._lock = threading.Lock()

    def inc(self, *labels: str, by: int = 1) -> None:
        key = "|".join(labels) if labels else ""
        with self._lock:
            self._values[key] = self._values.get(key, 0) + by

    def value(self, *labels: str) -> int:
        return self._values.get("|".join(labels) if labels else "", 0)

    def total(self) -> int:
        with self._lock:
            return sum(self._values.values())

    def snapshot(self) -> Dict[str, int]:
        with self._lock:
            return dict(sorted(self._values.items()))


class Histogram:
    """Cumulative fixed-bucket histogram (le semantics + ``+Inf``)."""

    def __init__(self, buckets: Sequence[float]) -> None:
        self.bounds: Tuple[float, ...] = tuple(buckets)
        self._counts: List[int] = [0] * (len(self.bounds) + 1)
        self.sum = 0.0
        self.count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        index = len(self.bounds)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                index = i
                break
        with self._lock:
            self._counts[index] += 1
            self.sum += value
            self.count += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def snapshot(self) -> Dict:
        with self._lock:
            cumulative, acc = [], 0
            for c in self._counts:
                acc += c
                cumulative.append(acc)
            return {
                "buckets": {
                    **{f"le_{b:g}": cumulative[i]
                       for i, b in enumerate(self.bounds)},
                    "le_inf": cumulative[-1],
                },
                "sum": self.sum,
                "count": self.count,
                "mean": self.mean,
            }


class ServiceMetrics:
    """Everything the ``stats`` endpoint reports about traffic."""

    def __init__(self) -> None:
        self.started = time.monotonic()
        #: requests by (method, outcome) where outcome is ``ok`` or an
        #: error code (``overloaded``, ``timeout``, ``bad_request``, ...)
        self.requests = Counter()
        self.bytes_in = Counter()
        self.bytes_out = Counter()
        #: request latency per method, seconds
        self._latency: Dict[str, Histogram] = {}
        #: jobs per compression batch
        self.batch_size = Histogram(BATCH_BUCKETS)
        #: engine resilience events: ``fallback`` (compiled engine
        #: faulted, reference reran the request) and ``degraded``
        #: (breaker open, compiled engine skipped entirely)
        self.engine_events = Counter()
        #: compress requests by container format (rcx1 | rcx2)
        self.compress_formats = Counter()
        #: serialized container bytes per successful compress, by format
        self._coded_bytes: Dict[str, Histogram] = {}
        self._lock = threading.Lock()

    def observe_compress(self, format: str, coded_bytes: int) -> None:
        """One successful compress response: its container format and
        the serialized container's size."""
        self.compress_formats.inc(format)
        with self._lock:
            hist = self._coded_bytes.get(format)
            if hist is None:
                hist = self._coded_bytes[format] = Histogram(
                    CODED_BYTES_BUCKETS)
        hist.observe(float(coded_bytes))

    def observe_request(self, method: str, outcome: str,
                        seconds: float) -> None:
        self.requests.inc(method, outcome)
        with self._lock:
            hist = self._latency.get(method)
            if hist is None:
                hist = self._latency[method] = Histogram(LATENCY_BUCKETS)
        hist.observe(seconds)

    def observe_batch(self, size: int) -> None:
        self.batch_size.observe(float(size))

    def add_bytes(self, direction: str, count: int) -> None:
        (self.bytes_in if direction == "in" else self.bytes_out).inc(
            by=count)

    def snapshot(self) -> Dict:
        with self._lock:
            latency = {m: h.snapshot()
                       for m, h in sorted(self._latency.items())}
            coded = {f: h.snapshot()
                     for f, h in sorted(self._coded_bytes.items())}
        return {
            "uptime_seconds": time.monotonic() - self.started,
            "counters": {
                "requests_total": self.requests.snapshot(),
                "bytes_in_total": self.bytes_in.total(),
                "bytes_out_total": self.bytes_out.total(),
                "engine_events_total": self.engine_events.snapshot(),
                "compress_format_total": self.compress_formats.snapshot(),
            },
            "histograms": {
                "request_seconds": latency,
                "batch_size": self.batch_size.snapshot(),
                "coded_bytes": coded,
            },
        }


# -- fleet aggregation -------------------------------------------------------
#
# The dispatcher sums its workers' ``stats`` snapshots into one fleet
# view.  Counters and histogram buckets add; a handful of keys are
# structural rather than additive: uptimes and capacities take the max
# (the fleet is as old as its oldest worker, and capacity is per
# worker, not summed admission), booleans like a registry's ``clean``
# AND together (one dirty worker means a dirty fleet), and ``mean`` is
# recomputed from the merged sum/count rather than averaged.

_MAX_KEYS = frozenset(["uptime_seconds", "capacity", "high_water",
                       "exec_budget"])
_AND_KEYS = frozenset(["clean", "enabled"])

# Circuit-breaker states are a *severity*, not a flow: a fleet whose
# quietest worker reports ``closed`` while another reports ``open`` has
# an open breaker.  Merge by worst-state-wins; "first worker wins" here
# used to let a zero-request worker polled first mask a tripped breaker
# elsewhere in the fleet.
_BREAKER_SEVERITY = {"closed": 0, "half_open": 1, "open": 2}


def _merge_into(acc: Dict, other: Dict) -> None:
    for key, value in other.items():
        if key not in acc:
            # deep-copy on adoption: the accumulator must never alias
            # (and later mutate) a worker's own snapshot structures
            acc[key] = copy.deepcopy(value)
            continue
        mine = acc[key]
        if isinstance(mine, dict) and isinstance(value, dict):
            _merge_into(mine, value)
        elif isinstance(mine, bool) or isinstance(value, bool):
            acc[key] = (mine and value) if key in _AND_KEYS \
                else (mine or value)
        elif isinstance(mine, (int, float)) and \
                isinstance(value, (int, float)):
            acc[key] = max(mine, value) if key in _MAX_KEYS \
                else mine + value
        elif isinstance(mine, list) and isinstance(value, list):
            acc[key] = mine + [v for v in value if v not in mine]
        elif isinstance(mine, str) and isinstance(value, str) \
                and mine in _BREAKER_SEVERITY \
                and value in _BREAKER_SEVERITY:
            if _BREAKER_SEVERITY[value] > _BREAKER_SEVERITY[mine]:
                acc[key] = value
        # other strings and mixed types: first worker wins


def _fix_means(node) -> None:
    if not isinstance(node, dict):
        return
    for value in node.values():
        _fix_means(value)
    if "mean" in node and "sum" in node and "count" in node:
        count = node["count"]
        node["mean"] = node["sum"] / count if count else 0.0


def merge_stats(snapshots: Sequence[Dict]) -> Dict:
    """Aggregate worker ``stats`` snapshots into one fleet snapshot."""
    merged: Dict = {}
    for snap in snapshots:
        _merge_into(merged, snap)
    _fix_means(merged)
    return merged
