"""The fleet dispatcher: one accept loop, N worker processes.

The single-process :class:`CompressionService` pins the whole box on one
CPU-bound compress.  The dispatcher keeps the same wire protocol and the
same lifecycle (start / serve_until_stopped / drain on SIGTERM) but does
none of the work itself: it accepts client connections, picks a worker,
and relays the request envelope over a pooled connection — binary frames
on the worker hop, so bulk payloads cross the dispatcher without a
base64 round-trip.

Routing is **grammar-affine**: requests that name a grammar (compress)
hash the *resolved content digest* onto a worker index, so all traffic
for one grammar lands on the same worker and its precompiled
GrammarProgram, micro-batcher, and derivation cache stay hot — the
multi-process analogue of the in-process per-grammar worker map.
Everything else round-robins.  If the affine worker is down the request
slides to the next live index: colder cache beats an error.

Failure contract: a worker that dies mid-request (crash, OOM-kill,
rolling restart) surfaces as a structured, retryable ``worker_lost``
error — the supervisor is already respawning the worker, so the client's
existing :class:`RetryPolicy` absorbs the blip.  The work methods are
idempotent (compress is a pure function of its inputs; ``grammar.put``
is content-addressed), so the retry is always safe.

``stats`` aggregates the fleet: worker snapshots are merged (counters
sum, histogram buckets sum, means recomputed) and a ``fleet`` section
reports per-worker liveness, restarts, and routing counts.
"""

from __future__ import annotations

import asyncio
import hashlib
import signal
import time
from typing import Dict, List, Optional, Tuple

from ..registry import GrammarRegistry, RegistryError
from . import protocol
from .metrics import merge_stats
from .pool import WorkerHandle, WorkerPool
from .protocol import FrameError, ServiceError

__all__ = ["FleetDispatcher"]

#: methods the dispatcher answers locally (fleet-level views)
_LOCAL = frozenset(["health", "stats"])
#: methods subject to drain rejection
_WORK = frozenset(["compress", "decompress", "run_compressed",
                   "grammar.put"])


def _affinity(digest: str, n: int) -> int:
    """Stable grammar->worker mapping: first 4 bytes of sha256 of the
    content digest, mod fleet size."""
    raw = hashlib.sha256(digest.encode("ascii")).digest()
    return int.from_bytes(raw[:4], "big") % n


class _WorkerConn:
    """One pooled dispatcher->worker connection."""

    __slots__ = ("reader", "writer", "generation")

    def __init__(self, reader, writer, generation: int) -> None:
        self.reader = reader
        self.writer = writer
        self.generation = generation

    def close(self) -> None:
        try:
            self.writer.close()
        except Exception:  # noqa: BLE001 — teardown best-effort
            pass


class FleetDispatcher:
    """Accepts client connections and routes to a :class:`WorkerPool`.

    Drop-in for :class:`CompressionService` at the lifecycle level:
    ``start`` / ``serve_until_stopped`` / ``serve_forever`` /
    ``request_shutdown`` / ``stop`` / ``port``.  ``worker_config`` is
    passed through to each worker's ``CompressionService``.
    """

    def __init__(self, registry_path: str, *, workers: int,
                 worker_config: Optional[dict] = None,
                 request_timeout: float = 30.0,
                 integrity_scan: bool = True) -> None:
        if workers < 1:
            raise ValueError("fleet needs at least one worker")
        self.registry_path = str(registry_path)
        self.registry = GrammarRegistry(registry_path)
        self.request_timeout = request_timeout
        self.integrity_scan = integrity_scan
        self.startup_report: Optional[Dict] = None
        worker_config = dict(worker_config or {})
        worker_config.setdefault("request_timeout", request_timeout)
        self.pool = WorkerPool(self.registry_path, workers,
                               worker_config=worker_config,
                               on_worker_change=self._worker_changed)
        self.started = time.monotonic()
        self._draining = False
        self._pending = 0
        self._rr = 0  # round-robin cursor for non-affine methods
        self._routed = 0
        self._worker_lost_total = 0
        self._conns: List[List[_WorkerConn]] = [[] for _ in range(workers)]
        self._server: Optional[asyncio.base_events.Server] = None
        self._stop_requested: Optional[asyncio.Event] = None
        self._writers: set = set()

    # -- lifecycle ----------------------------------------------------------

    @property
    def port(self) -> int:
        return self._server.sockets[0].getsockname()[1]

    async def start(self, host: str = "127.0.0.1",
                    port: int = protocol.DEFAULT_PORT) -> None:
        if self.integrity_scan:
            # heal once, centrally — workers skip their own scan so N
            # processes never race the same quarantine/repair renames
            self.startup_report = self.registry.startup_scan()
        self._stop_requested = asyncio.Event()
        await self.pool.start()
        self._server = await asyncio.start_server(
            self._handle_conn, host, port)

    async def serve_forever(self, host: str = "127.0.0.1",
                            port: int = protocol.DEFAULT_PORT) -> None:
        await self.start(host, port)
        await self.serve_until_stopped()

    async def serve_until_stopped(self) -> None:
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, self._stop_requested.set)
            except (NotImplementedError, RuntimeError):
                pass
        await self._stop_requested.wait()
        await self.stop()

    def request_shutdown(self) -> None:
        if self._stop_requested is not None:
            self._stop_requested.set()

    async def stop(self, grace: float = 30.0) -> None:
        """Fleet drain: reject new work, let in-flight requests finish,
        drain every worker, then tear down the listener."""
        self._draining = True
        deadline = time.monotonic() + grace
        while self._pending > 0 and time.monotonic() < deadline:
            await asyncio.sleep(0.02)
        await self.pool.stop(grace=max(1.0, deadline - time.monotonic()))
        await asyncio.sleep(0.05)  # let final error frames flush
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for writer in list(self._writers):
            writer.close()
        for conns in self._conns:
            while conns:
                conns.pop().close()

    # -- supervision hooks --------------------------------------------------

    def _worker_changed(self, handle: WorkerHandle) -> None:
        """A worker went down or came back: pooled connections to any
        other incarnation of that slot are dead weight — drop them."""
        conns = self._conns[handle.index]
        stale = [c for c in conns if c.generation != handle.generation
                 or not handle.up]
        for conn in stale:
            conns.remove(conn)
            conn.close()

    # -- connection handling ------------------------------------------------

    async def _handle_conn(self, reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
        self._writers.add(writer)
        try:
            while True:
                try:
                    item = await protocol.read_message(reader)
                except FrameError as exc:
                    try:
                        await protocol.write_message(
                            writer, protocol.error_body(
                                None, protocol.E_BAD_REQUEST,
                                f"unreadable frame: {exc}"))
                    except (ConnectionError, OSError):
                        pass
                    break
                if item is None:
                    break
                msg, binary = item
                response = await self._handle_request(msg)
                try:
                    await protocol.write_message(writer, response,
                                                 binary=binary)
                except (ConnectionError, FrameError):
                    break
        except asyncio.CancelledError:
            pass  # loop teardown cancelling idle readers: end quietly
        finally:
            self._writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _handle_request(self, msg: dict) -> dict:
        req_id = msg.get("id")
        method = msg.get("method")
        params = msg.get("params") or {}
        if not isinstance(method, str) or not isinstance(params, dict):
            return protocol.error_body(
                req_id, protocol.E_BAD_REQUEST,
                "request needs a string 'method' and object 'params'")
        if method in _LOCAL:
            try:
                if method == "health":
                    return protocol.result_body(req_id, self._health())
                return protocol.result_body(req_id, await self._stats())
            except Exception as exc:  # noqa: BLE001 — never kill reader
                return protocol.error_body(req_id, protocol.E_INTERNAL,
                                           repr(exc))
        if self._draining and method in _WORK:
            # the uniform mid-drain answer, regardless of which worker
            # the request would have routed to
            return protocol.error_body(req_id, protocol.E_SHUTTING_DOWN,
                                       "fleet is draining")
        self._pending += 1
        try:
            try:
                index = self._pick(method, params)
                self._routed += 1
                return await asyncio.wait_for(
                    self._forward(index, msg),
                    self.request_timeout + 5.0)
            except asyncio.TimeoutError:
                return protocol.error_body(
                    req_id, protocol.E_TIMEOUT,
                    f"fleet request exceeded "
                    f"{self.request_timeout + 5.0:g}s")
            except ServiceError as exc:
                if exc.code == protocol.E_WORKER_LOST:
                    self._worker_lost_total += 1
                return protocol.error_body(req_id, exc.code, exc.message)
            except Exception as exc:  # noqa: BLE001
                return protocol.error_body(req_id, protocol.E_INTERNAL,
                                           repr(exc))
        finally:
            self._pending -= 1

    # -- routing ------------------------------------------------------------

    def _pick(self, method: str, params: dict) -> int:
        """Choose a worker index: grammar affinity when the request
        names a grammar, round-robin otherwise."""
        up = self.pool.up_indices()
        if not up:
            raise ServiceError(
                protocol.E_WORKER_LOST,
                "no fleet worker is up (restarting); safe to retry")
        ref = params.get("grammar")
        if isinstance(ref, str) and ref:
            try:
                digest = self.registry.resolve(ref)
            except Exception:  # noqa: BLE001 — RegistryError and worse
                # unknown ref: still route consistently on the raw ref
                # so the worker's not_found answer stays affine too
                digest = ref
            want = _affinity(digest, self.pool.size)
            # slide forward to the nearest live worker
            for offset in range(self.pool.size):
                index = (want + offset) % self.pool.size
                handle = self.pool.workers[index]
                if handle is not None and handle.up:
                    return index
        self._rr += 1
        return up[self._rr % len(up)]

    # -- forwarding ---------------------------------------------------------

    async def _checkout(self, index: int) -> _WorkerConn:
        handle = self.pool.workers[index]
        if handle is None or not handle.up:
            raise ServiceError(
                protocol.E_WORKER_LOST,
                f"worker {index} is down (restarting); safe to retry")
        conns = self._conns[index]
        while conns:
            conn = conns.pop()
            if conn.generation == handle.generation:
                return conn
            conn.close()
        try:
            if handle.addr.startswith("unix:"):
                reader, writer = await asyncio.open_unix_connection(
                    handle.addr[len("unix:"):])
            else:
                _, host, port = handle.addr.split(":")
                reader, writer = await asyncio.open_connection(
                    host, int(port))
        except (ConnectionError, OSError) as exc:
            raise ServiceError(
                protocol.E_WORKER_LOST,
                f"worker {index} unreachable ({exc}); "
                "safe to retry") from None
        return _WorkerConn(reader, writer, handle.generation)

    async def _forward(self, index: int, msg: dict) -> dict:
        """Relay one envelope to a worker; binary framing on the hop."""
        conn = await self._checkout(index)
        try:
            await protocol.write_message(conn.writer, msg, binary=True)
            item = await protocol.read_message(conn.reader)
        except asyncio.CancelledError:
            conn.close()
            raise
        except (ConnectionError, FrameError, OSError) as exc:
            conn.close()
            raise ServiceError(
                protocol.E_WORKER_LOST,
                f"worker {index} dropped the request ({exc}); "
                "safe to retry") from None
        if item is None:
            conn.close()
            raise ServiceError(
                protocol.E_WORKER_LOST,
                f"worker {index} hung up mid-request; safe to retry")
        handle = self.pool.workers[index]
        if handle is not None and handle.up \
                and conn.generation == handle.generation:
            self._conns[index].append(conn)  # still warm: pool it
        else:
            conn.close()
        return item[0]

    # -- fleet-local methods ------------------------------------------------

    def _health(self) -> dict:
        return {
            "status": "draining" if self._draining else "ok",
            "uptime_seconds": time.monotonic() - self.started,
            "pending": self._pending,
            "workers": {
                "count": self.pool.size,
                "alive": self.pool.alive(),
                "restarts_total": self.pool.restarts_total,
            },
        }

    async def _stats(self) -> dict:
        """Aggregate worker snapshots plus the fleet's own section."""
        async def _one(index: int) -> Optional[Tuple[int, dict]]:
            try:
                reply = await asyncio.wait_for(
                    self._forward(index, {"id": 0, "method": "stats",
                                          "params": {}}), 10.0)
            except (ServiceError, asyncio.TimeoutError):
                return None
            if not reply.get("ok"):
                return None
            return index, reply["result"]

        replies = [r for r in await asyncio.gather(
            *(_one(i) for i in self.pool.up_indices())) if r is not None]
        merged = merge_stats([snap for _, snap in replies])
        per_worker = {}
        for index, handle in enumerate(self.pool.workers):
            if handle is None:
                continue
            snap = dict(next((s for i, s in replies if i == index), {}))
            per_worker[str(index)] = {
                "pid": handle.pid,
                "up": handle.up,
                "generation": handle.generation,
                "restarts": handle.restarts,
                "uptime_seconds": time.monotonic() - handle.started,
                "requests_total": sum(
                    (snap.get("counters") or {})
                    .get("requests_total", {}).values()),
            }
        merged["fleet"] = {
            "workers": self.pool.size,
            "alive": self.pool.alive(),
            "restarts_total": self.pool.restarts_total,
            "routed": self._routed,
            "worker_lost_total": self._worker_lost_total,
            "per_worker": per_worker,
        }
        registry = merged.setdefault("registry", {})
        if self.startup_report is not None:
            registry["startup_scan"] = {
                "clean": self.startup_report.get("clean"),
                "checked": self.startup_report.get("checked"),
                "quarantined":
                    len(self.startup_report.get("quarantined", [])),
                "dangling_tags":
                    len(self.startup_report.get("dangling_tags", [])),
                "poison": self.startup_report.get("poison", 0),
                "poison_converted":
                    self.startup_report.get("poison_converted", 0),
            }
        return merged
