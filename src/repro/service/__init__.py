"""Async compression service: the train-once / compress-many workflow
as a long-lived network server.

A :class:`CompressionService` owns a
:class:`~repro.registry.GrammarRegistry` and serves ``compress`` /
``decompress`` / ``run_compressed`` / ``grammar.*`` / ``health`` /
``stats`` over length-prefixed JSON frames (see
:mod:`repro.service.protocol` and ``docs/SERVICE.md``).  Compression
requests against the same grammar are micro-batched onto a shared
derivation cache; a semaphore caps in-flight work and a high-water mark
sheds load with ``overloaded`` errors instead of unbounded queueing.
"""

from .breaker import CircuitBreaker
from .client import AsyncServiceClient, ServiceClient, ServiceError
from .metrics import ServiceMetrics
from .protocol import DEFAULT_PORT
from .retry import RetryPolicy
from .server import CompressionService

__all__ = [
    "CompressionService",
    "ServiceClient",
    "AsyncServiceClient",
    "ServiceError",
    "ServiceMetrics",
    "RetryPolicy",
    "CircuitBreaker",
    "DEFAULT_PORT",
]
