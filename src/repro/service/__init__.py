"""Async compression service: the train-once / compress-many workflow
as a long-lived network server.

A :class:`CompressionService` owns a
:class:`~repro.registry.GrammarRegistry` and serves ``compress`` /
``decompress`` / ``run_compressed`` / ``grammar.*`` / ``health`` /
``stats`` over length-prefixed frames — binary by default, with
per-frame legacy-JSON interop (see :mod:`repro.service.protocol` and
``docs/SERVICE.md``).  Compression requests against the same grammar
are micro-batched onto a shared derivation cache; a semaphore caps
in-flight work and a high-water mark sheds load with ``overloaded``
errors instead of unbounded queueing.

For multi-core hosts, :class:`FleetDispatcher` (``serve --workers N``)
runs N such services as supervised worker processes behind one port,
routing by grammar affinity so each worker's caches stay hot, healing
killed workers, and aggregating ``stats`` fleet-wide.
"""

from .breaker import CircuitBreaker
from .client import AsyncServiceClient, ServiceClient, ServiceError
from .dispatch import FleetDispatcher
from .metrics import ServiceMetrics
from .pool import WorkerPool
from .protocol import DEFAULT_PORT
from .retry import RetryPolicy
from .server import CompressionService

__all__ = [
    "CompressionService",
    "FleetDispatcher",
    "WorkerPool",
    "ServiceClient",
    "AsyncServiceClient",
    "ServiceError",
    "ServiceMetrics",
    "RetryPolicy",
    "CircuitBreaker",
    "DEFAULT_PORT",
]
