"""Per-key circuit breaker: the server's degraded-mode trip wire.

The compiled engine is a performance transformation of the reference
interpreter; when it faults *unexpectedly* on some grammar (a table that
fails to build, an injected fault, a genuine bug), the server falls back
to the reference engine for that request — and this breaker remembers.
After ``threshold`` consecutive failures for a key (a grammar digest),
the breaker *opens*: the compiled engine is quarantined for that grammar
and requests go straight to the reference engine (``degraded`` mode,
skipping the doomed attempt).  After ``cooldown`` seconds, one probe
request is allowed through (half-open); success closes the breaker,
failure re-opens it for another cooldown.

States per key: ``closed`` (healthy), ``open`` (quarantined),
``half_open`` (probing).  Thread-safe: the server consults it from
executor threads.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict

__all__ = ["CircuitBreaker"]


class _Entry:
    __slots__ = ("failures", "opened_at", "probing")

    def __init__(self) -> None:
        self.failures = 0
        self.opened_at = 0.0
        self.probing = False


class CircuitBreaker:
    def __init__(self, threshold: int = 3, cooldown: float = 30.0, *,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        self.threshold = threshold
        self.cooldown = cooldown
        self._clock = clock
        self._entries: Dict[str, _Entry] = {}
        self._lock = threading.Lock()

    def _state_locked(self, entry: _Entry) -> str:
        if entry.failures < self.threshold:
            return "closed"
        if self._clock() - entry.opened_at >= self.cooldown:
            return "half_open"
        return "open"

    def allow(self, key: str) -> bool:
        """May the protected operation be attempted for ``key``?

        Open: no.  Half-open: yes, but only for one probe at a time —
        concurrent requests during the probe stay degraded rather than
        stampeding a possibly-still-broken path.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return True
            state = self._state_locked(entry)
            if state == "closed":
                return True
            if state == "half_open" and not entry.probing:
                entry.probing = True
                return True
            return False

    def record_success(self, key: str) -> None:
        with self._lock:
            self._entries.pop(key, None)

    def record_failure(self, key: str) -> bool:
        """Count a failure; returns True when the breaker is now open."""
        with self._lock:
            entry = self._entries.setdefault(key, _Entry())
            entry.failures += 1
            entry.probing = False
            if entry.failures >= self.threshold:
                entry.opened_at = self._clock()
                return True
            return False

    def is_open(self, key: str) -> bool:
        with self._lock:
            entry = self._entries.get(key)
            return entry is not None \
                and self._state_locked(entry) != "closed"

    def snapshot(self) -> Dict[str, Dict]:
        """Per-key state for the stats endpoint (keys truncated by the
        caller if desired)."""
        with self._lock:
            return {
                key: {"state": self._state_locked(entry),
                      "failures": entry.failures}
                for key, entry in sorted(self._entries.items())
            }

    def open_keys(self) -> list:
        with self._lock:
            return sorted(
                key for key, entry in self._entries.items()
                if self._state_locked(entry) != "closed")
