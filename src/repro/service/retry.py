"""Client-side retry policy: exponential backoff with full jitter.

The service sheds load with structured, *retryable* error codes
(``overloaded``, ``timeout``, ``shutting_down`` — see
:data:`repro.service.protocol.RETRYABLE`); this module is the matching
client half.  The backoff follows the "full jitter" scheme: attempt
``n`` sleeps ``uniform(0, min(cap, base * multiplier**n))``, which
de-correlates a thundering herd far better than equal jitter at the same
expected delay.

Transport failures (connection reset, a frame cut mid-byte, a refused
connect) are retryable too — the clients reconnect transparently before
the next attempt — surfaced as :class:`ServiceError` with the
client-side code ``"transport"``.  The service's work methods are
idempotent (same bytes in, same bytes out), so retrying a request whose
response was lost is safe.

A ``deadline`` (seconds of total budget) caps the whole retry loop: no
sleep is longer than the remaining budget, the remaining budget is
propagated to the server in each request's envelope (the server clamps
its own per-request timeout to it), and when the budget is spent the
last structured error is raised — retries never outlive the caller's
patience.
"""

from __future__ import annotations

import random
from typing import Iterable, Optional

from .protocol import RETRYABLE

__all__ = ["RetryPolicy", "TRANSPORT"]

#: client-side pseudo-code for connection-level failures
TRANSPORT = "transport"


class RetryPolicy:
    """Backoff schedule + the set of codes worth retrying.

    ``max_attempts`` counts *total* tries (1 = no retry).  ``base`` and
    ``multiplier`` shape the exponential envelope, ``cap`` bounds any
    single sleep, and ``rng`` (any object with ``uniform``) makes jitter
    deterministic in tests.
    """

    def __init__(self, max_attempts: int = 4, *,
                 base: float = 0.05,
                 multiplier: float = 2.0,
                 cap: float = 2.0,
                 retry_codes: Optional[Iterable[str]] = None,
                 rng: Optional[random.Random] = None) -> None:
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if base < 0 or cap < 0 or multiplier < 1.0:
            raise ValueError("backoff parameters out of range")
        self.max_attempts = max_attempts
        self.base = base
        self.multiplier = multiplier
        self.cap = cap
        self.retry_codes = frozenset(
            RETRYABLE | {TRANSPORT} if retry_codes is None
            else retry_codes)
        self.rng = rng if rng is not None else random.Random()

    def retries(self, code: str) -> bool:
        return code in self.retry_codes

    def backoff(self, attempt: int) -> float:
        """Sleep before retry number ``attempt`` (0-based): full jitter
        in ``[0, min(cap, base * multiplier**attempt)]``."""
        envelope = min(self.cap, self.base * self.multiplier ** attempt)
        return self.rng.uniform(0.0, envelope)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"RetryPolicy(max_attempts={self.max_attempts}, "
                f"base={self.base}, multiplier={self.multiplier}, "
                f"cap={self.cap})")
