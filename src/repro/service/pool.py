"""The fleet's worker pool: N :class:`CompressionService` processes.

Each worker is a ``multiprocessing`` *spawn* child (fork would clone the
dispatcher's event loop and executor threads mid-flight) running a full
:class:`~repro.service.server.CompressionService` against the shared
on-disk registry.  Workers bind Unix domain sockets where the platform
has them (one syscall cheaper than TCP and invisible to the network),
falling back to loopback TCP on port 0; either way the child publishes
its address through an *addr file* written atomically next to the
socket, which doubles as the readiness handshake — the dispatcher polls
for the file instead of guessing how long startup takes.

Supervision rides the event loop: each child's ``Process.sentinel`` is
registered with ``loop.add_reader``, so a worker death wakes the
dispatcher immediately — no polling thread, no reaping latency.  A dead
worker is respawned in place with a bumped *generation* counter; the
dispatcher uses generations to invalidate pooled connections to the old
incarnation.  ``stop()`` propagates the fleet drain: SIGTERM each child
(its own ``serve_until_stopped`` handler drains in-flight work), wait,
then SIGKILL stragglers.  ``kill()`` is the chaos suite's hook: an
instant SIGKILL, exactly what a crashed or OOM-killed worker looks like.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import os
import shutil
import socket
import tempfile
import time
from typing import Callable, Dict, List, Optional

from ..registry import GrammarRegistry

__all__ = ["WorkerPool", "WorkerHandle", "worker_main"]

#: sockaddr_un paths are capped around 104-108 bytes; longer tmpdirs
#: (deep CI workspaces) silently push us onto TCP instead.
_UNIX_PATH_MAX = 100


def _sock_path(addr_file: str) -> Optional[str]:
    """The Unix socket path derived from an addr file, when usable."""
    if not hasattr(socket, "AF_UNIX"):
        return None
    candidate = addr_file[:-len(".addr")] + ".sock"
    return candidate if len(candidate) < _UNIX_PATH_MAX else None


def _clear_artifacts(addr_file: str) -> None:
    """Remove a (possibly stale) addr file and its derived socket.

    Run before every spawn attempt and after every worker death: a
    child that died *after* atomically publishing its address leaves
    both behind, and a retried spawn under the same generation would
    otherwise read the dead address from the leftover addr file — or
    fail its bind against the leftover socket — forever.
    """
    for path in (addr_file, addr_file + ".tmp", _sock_path(addr_file)):
        if path is None:
            continue
        try:
            os.unlink(path)
        except FileNotFoundError:
            pass
        except OSError:
            pass


def worker_main(registry_path: str, addr_file: str, config: dict) -> None:
    """Child-process entry point: serve one worker until SIGTERM.

    Runs a plain :class:`CompressionService` with ``integrity_scan``
    off — the dispatcher already healed the registry once; N workers
    racing the same quarantine/repair pass would fight over renames.

    ``config`` may carry a ``fault_plan`` (a :class:`~repro.faults.
    FaultPlan` dict): the chaos suites use it to arm injection sites
    *inside* the worker — e.g. ``native.crash`` — deterministically
    per schedule.
    """
    # imported here so the spawn child pays the import cost, not the
    # dispatcher's hot path
    from .server import CompressionService

    config = dict(config)
    fault_plan = config.pop("fault_plan", None)
    if fault_plan is not None:
        from .. import faults
        faults.activate(fault_plan)

    registry = GrammarRegistry(registry_path)
    service = CompressionService(registry, integrity_scan=False, **config)

    async def _serve() -> None:
        unix_path = _sock_path(addr_file)
        await service.start(unix_path=unix_path, port=0)
        if unix_path is not None:
            addr = "unix:" + unix_path
        else:
            addr = "tcp:127.0.0.1:%d" % service.port
        # atomic publish = readiness signal: the dispatcher never sees
        # a half-written address
        tmp = addr_file + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(addr)
        os.replace(tmp, addr_file)
        await service.serve_until_stopped()

    asyncio.run(_serve())


class WorkerHandle:
    """One supervised worker process and how to reach it."""

    __slots__ = ("index", "proc", "addr", "addr_file", "generation",
                 "restarts", "up", "started")

    def __init__(self, index: int, proc, addr: str, addr_file: str,
                 generation: int, restarts: int) -> None:
        self.index = index
        self.proc = proc
        self.addr = addr
        self.addr_file = addr_file
        self.generation = generation
        self.restarts = restarts
        self.up = True
        self.started = time.monotonic()

    @property
    def pid(self) -> Optional[int]:
        return self.proc.pid

    def connect(self, timeout: float = 5.0) -> socket.socket:
        """A fresh blocking connection to this worker (dispatcher uses
        its own async path; this is for tests and tooling)."""
        if self.addr.startswith("unix:"):
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(timeout)
            sock.connect(self.addr[len("unix:"):])
            return sock
        _, host, port = self.addr.split(":")
        return socket.create_connection((host, int(port)),
                                        timeout=timeout)


class WorkerPool:
    """Spawns, supervises, and drains ``size`` worker processes.

    ``on_worker_change(handle)`` fires from the event loop whenever a
    worker goes down or comes back up — the dispatcher uses it to drop
    pooled connections to dead incarnations.
    """

    def __init__(self, registry_path: str, size: int, *,
                 worker_config: Optional[dict] = None,
                 spawn_timeout: float = 30.0,
                 on_worker_change: Optional[Callable] = None) -> None:
        if size < 1:
            raise ValueError("worker pool needs at least one worker")
        self.registry_path = str(registry_path)
        self.size = size
        self.worker_config = dict(worker_config or {})
        self.spawn_timeout = spawn_timeout
        self.on_worker_change = on_worker_change
        self.workers: List[Optional[WorkerHandle]] = [None] * size
        self.restarts_total = 0
        self._ctx = multiprocessing.get_context("spawn")
        self._ipc_dir = tempfile.mkdtemp(prefix="repro-fleet-")
        self._stopping = False
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._watched: Dict[int, int] = {}  # sentinel fd -> index
        self._respawn_tasks: set = set()

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        await asyncio.gather(*(self._spawn(i) for i in range(self.size)))

    async def stop(self, grace: float = 30.0) -> None:
        """Fleet drain: SIGTERM every worker, wait, SIGKILL stragglers."""
        self._stopping = True
        # cancel in-flight respawns first (each kills its half-started
        # child on the way out), so the worker snapshot below is final
        for task in list(self._respawn_tasks):
            task.cancel()
        if self._respawn_tasks:
            await asyncio.gather(*self._respawn_tasks,
                                 return_exceptions=True)
        procs = []
        for handle in self.workers:
            if handle is None:
                continue
            self._unwatch(handle)
            handle.up = False
            if handle.proc.is_alive():
                handle.proc.terminate()  # SIGTERM -> worker drains
            procs.append(handle.proc)
        loop = asyncio.get_running_loop()

        def _join_all() -> None:
            deadline = time.monotonic() + grace
            for proc in procs:
                proc.join(max(0.1, deadline - time.monotonic()))
            for proc in procs:
                if proc.is_alive():
                    proc.kill()
                    proc.join(5.0)

        await loop.run_in_executor(None, _join_all)
        shutil.rmtree(self._ipc_dir, ignore_errors=True)

    # -- spawning -----------------------------------------------------------

    async def _spawn(self, index: int, generation: int = 0,
                     restarts: int = 0) -> WorkerHandle:
        addr_file = os.path.join(self._ipc_dir,
                                 "w%d.g%d.addr" % (index, generation))
        # Never trust leftovers under this name: a previous attempt at
        # this generation may have published and then died, and its
        # stale addr file would satisfy _wait_ready with a dead address
        # (its stale socket would fail the child's bind).
        _clear_artifacts(addr_file)
        proc = self._ctx.Process(
            target=worker_main,
            args=(self.registry_path, addr_file, self.worker_config),
            name="repro-worker-%d" % index,
            daemon=True)
        proc.start()
        try:
            addr = await self._wait_ready(proc, addr_file)
        except BaseException:  # incl. CancelledError: reap the child
            if proc.is_alive():
                proc.kill()
            proc.join(1.0)
            _clear_artifacts(addr_file)
            raise
        handle = WorkerHandle(index, proc, addr, addr_file,
                              generation, restarts)
        self.workers[index] = handle
        self._watch(handle)
        if self.on_worker_change is not None:
            self.on_worker_change(handle)
        return handle

    async def _wait_ready(self, proc, addr_file: str) -> str:
        deadline = time.monotonic() + self.spawn_timeout
        while time.monotonic() < deadline:
            if os.path.exists(addr_file):
                with open(addr_file, "r", encoding="utf-8") as fh:
                    return fh.read().strip()
            if not proc.is_alive():
                raise RuntimeError(
                    "fleet worker died during startup "
                    f"(exitcode {proc.exitcode})")
            await asyncio.sleep(0.02)
        proc.kill()
        raise RuntimeError("fleet worker failed to become ready within "
                           f"{self.spawn_timeout:g}s")

    # -- supervision --------------------------------------------------------

    def _watch(self, handle: WorkerHandle) -> None:
        sentinel = handle.proc.sentinel
        self._watched[sentinel] = handle.index
        self._loop.add_reader(
            sentinel, self._exited, handle.index, handle.generation)

    def _unwatch(self, handle: WorkerHandle) -> None:
        sentinel = handle.proc.sentinel
        if sentinel in self._watched:
            del self._watched[sentinel]
            try:
                self._loop.remove_reader(sentinel)
            except (OSError, ValueError):
                pass

    def _exited(self, index: int, generation: int) -> None:
        """Sentinel became readable: the worker process is gone."""
        handle = self.workers[index]
        if handle is None or handle.generation != generation:
            return  # stale wakeup for an already-replaced incarnation
        self._unwatch(handle)
        handle.up = False
        if self.on_worker_change is not None:
            self.on_worker_change(handle)
        if not self._stopping:
            task = self._loop.create_task(
                self._respawn(index, generation))
            self._respawn_tasks.add(task)
            task.add_done_callback(self._respawn_tasks.discard)

    async def _respawn(self, index: int, generation: int) -> None:
        handle = self.workers[index]
        if self._stopping or handle is None \
                or handle.generation != generation:
            return
        handle.proc.join(0.5)  # reap the corpse
        _clear_artifacts(handle.addr_file)  # dead incarnation's debris
        self.restarts_total += 1
        try:
            await self._spawn(index, generation + 1, handle.restarts + 1)
        except RuntimeError:
            if not self._stopping:
                # keep trying: a worker slot never stays empty
                await asyncio.sleep(0.5)
                task = self._loop.create_task(
                    self._respawn(index, generation))
                self._respawn_tasks.add(task)
                task.add_done_callback(self._respawn_tasks.discard)

    # -- operations ---------------------------------------------------------

    async def restart(self, index: int, grace: float = 10.0) -> None:
        """Graceful rolling restart of one worker: drain, then respawn."""
        handle = self.workers[index]
        if handle is None:
            return
        self._unwatch(handle)
        handle.up = False
        if self.on_worker_change is not None:
            self.on_worker_change(handle)
        if handle.proc.is_alive():
            handle.proc.terminate()
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, handle.proc.join, grace)
        if handle.proc.is_alive():
            handle.proc.kill()
            await loop.run_in_executor(None, handle.proc.join, 5.0)
        _clear_artifacts(handle.addr_file)
        if not self._stopping:
            self.restarts_total += 1
            await self._spawn(index, handle.generation + 1,
                              handle.restarts + 1)

    def kill(self, index: int) -> Optional[int]:
        """SIGKILL one worker (chaos hook); supervision respawns it.
        Returns the killed pid, or ``None`` if the slot was down."""
        handle = self.workers[index]
        if handle is None or not handle.up:
            return None
        pid = handle.proc.pid
        try:
            handle.proc.kill()
        except (OSError, ValueError):
            return None
        return pid

    def alive(self) -> int:
        return sum(1 for h in self.workers if h is not None and h.up)

    def up_indices(self) -> List[int]:
        return [i for i, h in enumerate(self.workers)
                if h is not None and h.up]
