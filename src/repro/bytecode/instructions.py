"""Instruction-level encode/decode for the uncompressed bytecode.

An uncompressed code stream is a flat byte string: each operator occupies one
byte, immediately followed by ``nlit`` literal operand bytes (paper Section
3).  ``LABELV`` bytes mark potential branch targets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple

from .opcodes import OP_BY_CODE, OP_BY_NAME, OpSpec

__all__ = ["Instruction", "encode", "decode", "iter_decode", "code_points"]


@dataclass(frozen=True)
class Instruction:
    """One decoded operator plus its literal operand bytes."""

    op: OpSpec
    operands: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if len(self.operands) != self.op.nlit:
            raise ValueError(
                f"{self.op.name} takes {self.op.nlit} literal bytes, "
                f"got {len(self.operands)}"
            )
        for b in self.operands:
            if not 0 <= b <= 255:
                raise ValueError(f"operand byte {b} out of range")

    @property
    def size(self) -> int:
        """Encoded size in bytes (operator byte + literal bytes)."""
        return 1 + self.op.nlit

    def literal(self) -> int:
        """The operand bytes interpreted as a little-endian unsigned int."""
        value = 0
        for i, b in enumerate(self.operands):
            value |= b << (8 * i)
        return value

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        if self.operands:
            return f"{self.op.name} {' '.join(str(b) for b in self.operands)}"
        return self.op.name


def instr(name: str, *operands: int) -> Instruction:
    """Convenience constructor: ``instr("ADDRFP", 0, 4)``."""
    return Instruction(OP_BY_NAME[name], tuple(operands))


def encode(instructions: Sequence[Instruction]) -> bytes:
    """Encode a sequence of instructions into a flat byte string."""
    out = bytearray()
    for ins in instructions:
        out.append(ins.op.code)
        out.extend(ins.operands)
    return bytes(out)


def iter_decode(code: bytes) -> Iterator[Tuple[int, Instruction]]:
    """Yield ``(offset, instruction)`` pairs for a code stream.

    Raises ValueError on an unknown opcode or a truncated literal.
    """
    pc = 0
    n = len(code)
    while pc < n:
        op = OP_BY_CODE.get(code[pc])
        if op is None:
            raise ValueError(f"unknown opcode {code[pc]} at offset {pc}")
        end = pc + 1 + op.nlit
        if end > n:
            raise ValueError(f"truncated literal for {op.name} at offset {pc}")
        yield pc, Instruction(op, tuple(code[pc + 1:end]))
        pc = end


def decode(code: bytes) -> List[Instruction]:
    """Decode a full code stream into a list of instructions."""
    return [ins for _, ins in iter_decode(code)]


def code_points(code: bytes) -> List[int]:
    """Offsets of every instruction boundary in the stream.

    Used by the validator to check that label-table entries land on
    instruction boundaries.
    """
    return [off for off, _ in iter_decode(code)]
