"""Static validation of bytecode modules.

The initial grammar (Appendix 2) describes exactly the set of instruction
sequences with proper stack discipline: every basic block (a maximal run of
instructions between ``LABELV`` marks) is a sequence of complete statements,
so the evaluation stack is empty at every potential branch target.  The
validator checks this property instruction by instruction, plus the
referential integrity of label-table, global-table and descriptor indices.
A module that validates is guaranteed to parse under the initial grammar.
"""

from __future__ import annotations

from .instructions import iter_decode
from .module import Module, Procedure

__all__ = ["ValidationError", "validate_procedure", "validate_module"]

_POPS = {"v0": 0, "v1": 1, "v2": 2, "x0": 0, "x1": 1, "x2": 2, "pseudo": 0}
_PUSHES = {"v0": 1, "v1": 1, "v2": 1, "x0": 0, "x1": 0, "x2": 0, "pseudo": 0}


class ValidationError(ValueError):
    """Raised when a module violates stack discipline or table bounds."""


def validate_procedure(proc: Procedure, module: Module = None) -> None:
    """Check one procedure; raises :class:`ValidationError` on failure."""
    depth = 0
    label_offsets = set(proc.labels)
    boundaries = set()
    for off, ins in iter_decode(proc.code):
        boundaries.add(off)
        klass = ins.op.klass
        if klass == "pseudo":  # LABELV: branch target, stack must be empty
            if depth != 0:
                raise ValidationError(
                    f"{proc.name}+{off}: stack depth {depth} at LABELV"
                )
        depth -= _POPS[klass]
        if depth < 0:
            raise ValidationError(
                f"{proc.name}+{off}: {ins.op.name} pops from empty stack"
            )
        depth += _PUSHES[klass]
        if klass.startswith("x") and depth != 0:
            # The grammar derives a block as a sequence of complete
            # statements: a statement operator always empties the stack.
            # Depth > 0 here means an enclosing expression was suspended
            # across a statement (e.g. ARG under a pending address), which
            # does not parse under Appendix 2.
            raise ValidationError(
                f"{proc.name}+{off}: {ins.op.name} leaves stack depth "
                f"{depth}; statements must complete with an empty stack"
            )
        if ins.op.name in ("BrTrue", "JUMPV"):
            if ins.literal() >= len(proc.labels):
                raise ValidationError(
                    f"{proc.name}+{off}: label index {ins.literal()} "
                    f"out of range ({len(proc.labels)} labels)"
                )
            # Control leaves the block; grammar statements keep depth at 0
            if depth != 0:
                raise ValidationError(
                    f"{proc.name}+{off}: stack depth {depth} after "
                    f"{ins.op.name}"
                )
        if module is not None:
            if ins.op.name == "ADDRGP" and ins.literal() >= len(module.globals):
                raise ValidationError(
                    f"{proc.name}+{off}: global index {ins.literal()} "
                    f"out of range"
                )
            if ins.op.generic == "LocalCALL" and (
                ins.literal() >= len(module.procedures)
            ):
                raise ValidationError(
                    f"{proc.name}+{off}: procedure index {ins.literal()} "
                    f"out of range"
                )
    if depth != 0:
        raise ValidationError(
            f"{proc.name}: stack depth {depth} at end of code"
        )
    bad = [off for off in label_offsets if off not in boundaries and off != len(proc.code)]
    if bad:
        raise ValidationError(
            f"{proc.name}: label offsets {sorted(bad)} not on an "
            f"instruction boundary"
        )


def validate_module(module: Module) -> None:
    """Validate every procedure and module-level table integrity."""
    names = set()
    for proc in module.procedures:
        if proc.name in names:
            raise ValidationError(f"duplicate procedure name {proc.name!r}")
        names.add(proc.name)
        validate_procedure(proc, module)
    for g in module.globals:
        if g.kind == "data" and g.value > len(module.data) + module.bss_size:
            raise ValidationError(
                f"global {g.name!r} offset {g.value} outside data+bss"
            )
        if g.kind == "proc" and g.value >= len(module.procedures):
            raise ValidationError(
                f"global {g.name!r} procedure index {g.value} out of range"
            )
    if module.entry is not None and not (
        0 <= module.entry < len(module.procedures)
    ):
        raise ValidationError(f"entry index {module.entry} out of range")
