"""Program packaging: procedures, label tables, global table (paper Section 3,
Appendix 3).

Each procedure has a *descriptor* recording its bytecode, a table of branch
target offsets, and its frame size.  Branch instructions in the bytecode hold
*label-table indices*, never raw offsets, so the compressor can rewrite the
code freely and only has to rewrite the label table (Section 3).

Global addresses likewise go through a single module-wide table: ``ADDRGP``
carries an index into the global table, whose entries are filled in by the
loader (our :mod:`repro.interp.runtime`) with the address of a data symbol,
the trampoline address of a bytecoded procedure, or the address of a library
intrinsic.

Size accounting mirrors the paper's executable-size table (Section 6):

* label tables are arrays of ``short`` (2 bytes/entry),
* descriptors are three words (12 bytes) each,
* the global table is an array of pointers (4 bytes/entry),
* trampolines are small fixed-size native stubs (:data:`TRAMPOLINE_BYTES`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .instructions import iter_decode

__all__ = [
    "GlobalEntry",
    "Procedure",
    "Module",
    "LABEL_ENTRY_BYTES",
    "DESCRIPTOR_BYTES",
    "GLOBAL_ENTRY_BYTES",
    "TRAMPOLINE_BYTES",
]

#: bytes per label-table entry (``static short _f_labels[]``)
LABEL_ENTRY_BYTES = 2
#: bytes per procedure descriptor (framesize word + two pointers)
DESCRIPTOR_BYTES = 12
#: bytes per global-table entry (``void *_globals[]``)
GLOBAL_ENTRY_BYTES = 4
#: bytes for one C-callable trampoline stub (push-args/call/ret sequence)
TRAMPOLINE_BYTES = 18


@dataclass
class GlobalEntry:
    """One slot of the module-wide global table.

    kind:
        ``"data"``  - a data symbol; ``value`` is its offset in the module's
        data segment.
        ``"proc"``  - a bytecoded procedure; ``value`` is its descriptor
        index.  The loader fills the slot with the trampoline address.
        ``"lib"``   - a library intrinsic (e.g. ``putchar``); resolved by
        name by the runtime.
    """

    kind: str
    name: str
    value: int = 0

    def __post_init__(self) -> None:
        if self.kind not in ("data", "proc", "lib"):
            raise ValueError(f"bad global entry kind {self.kind!r}")


@dataclass
class Procedure:
    """A bytecoded procedure and its descriptor contents."""

    name: str
    code: bytes
    labels: List[int] = field(default_factory=list)
    framesize: int = 0
    needs_trampoline: bool = False
    #: bytes of incoming formals (the trampoline's knowledge of the
    #: signature; packed into the descriptor word alongside framesize)
    argsize: int = 0

    def instructions(self):
        """Decode this procedure's code stream."""
        return list(iter_decode(self.code))

    @property
    def code_bytes(self) -> int:
        return len(self.code)

    @property
    def label_table_bytes(self) -> int:
        return LABEL_ENTRY_BYTES * len(self.labels)


@dataclass
class Module:
    """A complete bytecoded program (the unit the compressor works on)."""

    procedures: List[Procedure] = field(default_factory=list)
    globals: List[GlobalEntry] = field(default_factory=list)
    data: bytes = b""
    bss_size: int = 0
    entry: Optional[int] = None  # procedure index of main

    # -- lookup ----------------------------------------------------------
    def proc_index(self, name: str) -> int:
        for i, p in enumerate(self.procedures):
            if p.name == name:
                return i
        raise KeyError(name)

    def global_index(self, name: str) -> int:
        for i, g in enumerate(self.globals):
            if g.name == name:
                return i
        raise KeyError(name)

    def proc_by_name(self, name: str) -> Procedure:
        return self.procedures[self.proc_index(name)]

    # -- size accounting (paper Section 6) -------------------------------
    @property
    def code_bytes(self) -> int:
        """Total bytecode bytes across all procedures."""
        return sum(p.code_bytes for p in self.procedures)

    @property
    def label_table_bytes(self) -> int:
        return sum(p.label_table_bytes for p in self.procedures)

    @property
    def descriptor_bytes(self) -> int:
        return DESCRIPTOR_BYTES * len(self.procedures)

    @property
    def global_table_bytes(self) -> int:
        return GLOBAL_ENTRY_BYTES * len(self.globals)

    @property
    def trampoline_bytes(self) -> int:
        return TRAMPOLINE_BYTES * sum(
            1 for p in self.procedures if p.needs_trampoline
        )

    @property
    def data_bytes(self) -> int:
        return len(self.data)

    def size_breakdown(self) -> Dict[str, int]:
        """Byte counts of every component the paper's Table 2 includes."""
        return {
            "bytecode": self.code_bytes,
            "label_tables": self.label_table_bytes,
            "descriptors": self.descriptor_bytes,
            "global_table": self.global_table_bytes,
            "trampolines": self.trampoline_bytes,
            "data": self.data_bytes,
            "bss": self.bss_size,
        }

    def concatenated_code(self) -> bytes:
        """All procedures' bytecode, concatenated (the compressor's input)."""
        return b"".join(p.code for p in self.procedures)

    def opcode_histogram(self) -> Dict[str, int]:
        """Operator frequencies over the whole module (for baselines)."""
        hist: Dict[str, int] = {}
        for p in self.procedures:
            for _, ins in iter_decode(p.code):
                hist[ins.op.name] = hist.get(ins.op.name, 0) + 1
        return hist
