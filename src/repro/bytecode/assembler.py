"""A small textual assembler for the initial bytecode.

The assembler exists for tests, examples and debugging: the mini-C compiler
builds :class:`~repro.bytecode.module.Module` objects directly through
:class:`ProcedureBuilder`, which this assembler shares.

Syntax (one item per line, ``#`` starts a comment)::

    .entry main
    .global msg  data 0
    .global putchar lib
    .global main proc 0
    .data 48 65 6c 6c 6f
    .bss 64

    .proc main framesize=8 trampoline
        ADDRLP 0 0
        LIT1 5
        ASGNU
    loop:
        ADDRLP 0 0
        INDIRU
        BrTrue @body
        RETV
    body:
        ...
        JUMPV @loop
    .endproc

Operands may be raw byte values, ``@label`` (a 16-bit label-table index for
``BrTrue``/``JUMPV``), ``$name`` (a 16-bit global-table index for
``ADDRGP``), ``%name`` (a 16-bit procedure-descriptor index for
``LocalCALL*``), or ``=N`` (a 16-bit little-endian immediate, for the
two-byte frame offsets of ``ADDRFP``/``ADDRLP``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .opcodes import OP_BY_NAME, opcode
from .module import GlobalEntry, Module, Procedure

__all__ = ["ProcedureBuilder", "AssemblyError", "assemble", "disassemble"]


class AssemblyError(ValueError):
    """Raised on malformed assembly input or builder misuse."""


class ProcedureBuilder:
    """Incrementally builds one procedure's code stream and label table.

    Labels are symbolic while building; :meth:`finish` checks every
    referenced label was defined.  A label definition emits a ``LABELV``
    byte and records its offset in the label table (branch operands are
    label-table *indices*, per paper Section 3).
    """

    def __init__(self, name: str, framesize: int = 0,
                 needs_trampoline: bool = False, argsize: int = 0) -> None:
        self.name = name
        self.framesize = framesize
        self.needs_trampoline = needs_trampoline
        self.argsize = argsize
        self._code = bytearray()
        self._labels: List[int] = []          # label index -> code offset
        self._label_ids: Dict[str, int] = {}  # label name -> label index
        self._defined: set = set()

    # -- labels -----------------------------------------------------------
    def label_id(self, name: str) -> int:
        """Intern a label name, returning its label-table index."""
        if name not in self._label_ids:
            self._label_ids[name] = len(self._labels)
            self._labels.append(-1)
        return self._label_ids[name]

    def here(self, name: str) -> None:
        """Define label ``name`` at the current position (emits LABELV)."""
        idx = self.label_id(name)
        if name in self._defined:
            raise AssemblyError(f"label {name!r} defined twice in {self.name}")
        self._defined.add(name)
        self._labels[idx] = len(self._code)
        self._code.append(opcode("LABELV"))

    # -- emission ---------------------------------------------------------
    def emit(self, opname: str, *operand_bytes: int) -> None:
        """Emit an operator and its raw literal bytes."""
        spec = OP_BY_NAME.get(opname)
        if spec is None:
            raise AssemblyError(f"unknown operator {opname!r}")
        if len(operand_bytes) != spec.nlit:
            raise AssemblyError(
                f"{opname} takes {spec.nlit} literal bytes, "
                f"got {len(operand_bytes)}"
            )
        self._code.append(spec.code)
        for b in operand_bytes:
            if not 0 <= int(b) <= 255:
                raise AssemblyError(f"byte {b} out of range in {opname}")
            self._code.append(int(b))

    def emit_u16(self, opname: str, value: int) -> None:
        """Emit an operator whose two literal bytes are a 16-bit LE value."""
        if not 0 <= value <= 0xFFFF:
            raise AssemblyError(f"u16 operand {value} out of range")
        self.emit(opname, value & 0xFF, value >> 8)

    def emit_branch(self, opname: str, label: str) -> None:
        """Emit BrTrue/JUMPV with a symbolic label operand."""
        self.emit_u16(opname, self.label_id(label))

    # -- completion ---------------------------------------------------------
    def finish(self) -> Procedure:
        missing = [n for n, i in self._label_ids.items()
                   if self._labels[i] < 0]
        if missing:
            raise AssemblyError(
                f"undefined labels in {self.name}: {', '.join(sorted(missing))}"
            )
        return Procedure(
            name=self.name,
            code=bytes(self._code),
            labels=list(self._labels),
            framesize=self.framesize,
            needs_trampoline=self.needs_trampoline,
            argsize=self.argsize,
        )


def _parse_operand(tok: str, builder: ProcedureBuilder,
                   module: Module) -> Optional[Tuple[int, int]]:
    """Resolve a symbolic 16-bit operand token, or return None for raw."""
    if tok.startswith("@"):
        value = builder.label_id(tok[1:])
    elif tok.startswith("$"):
        value = module.global_index(tok[1:])
    elif tok.startswith("%"):
        value = module.proc_index(tok[1:])
    elif tok.startswith("="):
        value = int(tok[1:], 0)
    else:
        return None
    if not 0 <= value <= 0xFFFF:
        raise AssemblyError(f"operand {tok!r} out of 16-bit range")
    return value & 0xFF, value >> 8


def assemble(text: str) -> Module:
    """Assemble a full module from text."""
    module = Module()
    builder: Optional[ProcedureBuilder] = None
    entry_name: Optional[str] = None

    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        try:
            if line.startswith(".entry"):
                entry_name = line.split()[1]
            elif line.startswith(".global"):
                parts = line.split()
                if len(parts) == 3:
                    _, name, kind = parts
                    value = 0
                elif len(parts) == 4:
                    _, name, kind, sval = parts
                    value = int(sval, 0)
                else:
                    raise AssemblyError(".global name kind [value]")
                module.globals.append(GlobalEntry(kind, name, value))
            elif line.startswith(".data"):
                module.data += bytes(
                    int(tok, 16) for tok in line.split()[1:]
                )
            elif line.startswith(".bss"):
                module.bss_size += int(line.split()[1], 0)
            elif line.startswith(".proc"):
                if builder is not None:
                    raise AssemblyError("nested .proc")
                parts = line.split()
                name = parts[1]
                framesize = 0
                argsize = 0
                tramp = False
                for p in parts[2:]:
                    if p.startswith("framesize="):
                        framesize = int(p.split("=", 1)[1], 0)
                    elif p.startswith("argsize="):
                        argsize = int(p.split("=", 1)[1], 0)
                    elif p == "trampoline":
                        tramp = True
                    else:
                        raise AssemblyError(f"bad .proc attribute {p!r}")
                # Register the procedure eagerly so %name forward references
                # and 'proc' globals resolve.
                builder = ProcedureBuilder(name, framesize, tramp, argsize)
                module.procedures.append(
                    Procedure(name, b"", [], framesize, tramp, argsize)
                )
            elif line.startswith(".endproc"):
                if builder is None:
                    raise AssemblyError(".endproc without .proc")
                module.procedures[module.proc_index(builder.name)] = (
                    builder.finish()
                )
                builder = None
            elif line.endswith(":"):
                if builder is None:
                    raise AssemblyError("label outside .proc")
                builder.here(line[:-1].strip())
            else:
                if builder is None:
                    raise AssemblyError("instruction outside .proc")
                toks = line.split()
                opname_, args = toks[0], toks[1:]
                spec = OP_BY_NAME.get(opname_)
                if spec is None:
                    raise AssemblyError(f"unknown operator {opname_!r}")
                if len(args) == 1 and spec.nlit == 2:
                    sym = _parse_operand(args[0], builder, module)
                    if sym is not None:
                        if args[0].startswith("@"):
                            builder.emit_branch(opname_, args[0][1:])
                        else:
                            builder.emit(opname_, *sym)
                        continue
                builder.emit(opname_, *(int(a, 0) for a in args))
        except (AssemblyError, ValueError, KeyError, IndexError) as exc:
            raise AssemblyError(f"line {lineno}: {raw.strip()!r}: {exc}") from exc

    if builder is not None:
        raise AssemblyError("missing .endproc at end of input")
    if entry_name is not None:
        module.entry = module.proc_index(entry_name)
    return module


def disassemble(module: Module) -> str:
    """Render a module back into assembler text (labels become Ln:)."""
    from .instructions import iter_decode

    lines: List[str] = []
    if module.entry is not None:
        lines.append(f".entry {module.procedures[module.entry].name}")
    for g in module.globals:
        lines.append(f".global {g.name} {g.kind} {g.value}")
    if module.data:
        lines.append(".data " + " ".join(f"{b:02x}" for b in module.data))
    if module.bss_size:
        lines.append(f".bss {module.bss_size}")
    for proc in module.procedures:
        attrs = [f"framesize={proc.framesize}"]
        if proc.argsize:
            attrs.append(f"argsize={proc.argsize}")
        if proc.needs_trampoline:
            attrs.append("trampoline")
        lines.append(f".proc {proc.name} {' '.join(attrs)}")
        label_at = {off: i for i, off in enumerate(proc.labels)}
        for off, ins in iter_decode(proc.code):
            if ins.op.name == "LABELV":
                lines.append(f"L{label_at.get(off, '?')}:")
                continue
            if ins.op.name in ("BrTrue", "JUMPV") and ins.op.nlit == 2:
                lines.append(f"    {ins.op.name} @L{ins.literal()}")
            elif ins.operands:
                lines.append(
                    f"    {ins.op.name} "
                    + " ".join(str(b) for b in ins.operands)
                )
            else:
                lines.append(f"    {ins.op.name}")
        lines.append(".endproc")
    return "\n".join(lines) + "\n"
