"""The initial bytecode instruction set (paper Section 3, Appendices 1 and 2).

The bytecode is a simple postfix encoding of lcc IR trees.  Most operators
consist of a generic base (``ADD``) plus a one-character type suffix giving
the type of the value produced:

    ``V`` void, ``C``/``S`` char/short, ``I``/``U`` signed/unsigned int,
    ``F``/``D`` single/double float, ``P`` pointer (folded into ``U`` here,
    as in the paper's grammar), ``B`` block of memory.

Operators are grouped into *stack-effect classes*, matching the nonterminals
of the Appendix-2 grammar:

    ``v0``  leaf: pushes a value, pops nothing
    ``v1``  unary: pops one value, pushes one
    ``v2``  binary: pops two values, pushes one
    ``x0``  statement leaf: pops nothing, pushes nothing
    ``x1``  statement: pops one value
    ``x2``  statement: pops two values

``LIT[1234]``, ``ADDR[FGL]P``, ``LocalCALL*``, ``JUMPV`` and ``BrTrue`` are
prefix operators: they take their operand from the literal bytes that follow
them in the bytecode (paper Section 3).  Branch operands are *label-table
indices*, not offsets; ``LocalCALL`` operands are procedure-descriptor
indices; ``ADDRGP`` operands are global-table indices.

``LABELV`` marks a potential branch target.  It is not an operator (the
parse restarts at every ``LABELV``, Section 4.1) but it does occupy a byte
in the uncompressed stream; the uncompressed interpreter treats it as a
no-op.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

__all__ = [
    "OpSpec",
    "OPS",
    "OP_BY_NAME",
    "OP_BY_CODE",
    "CLASSES",
    "opcode",
    "opname",
    "LABELV",
]

# Stack-effect classes in the order the Appendix-2 grammar introduces them.
CLASSES: Tuple[str, ...] = ("v0", "v1", "v2", "x0", "x1", "x2", "pseudo")


@dataclass(frozen=True)
class OpSpec:
    """Static description of one bytecode operator.

    Attributes:
        name: full operator name, e.g. ``"ADDU"`` or ``"BrTrue"``.
        code: the operator's byte value in the uncompressed encoding.
        klass: stack-effect class (one of :data:`CLASSES`).
        nlit: number of literal operand bytes following the operator.
        generic: the un-typed base, e.g. ``"ADD"``.
        suffix: type suffix (``""`` for suffix-less operators like BrTrue).
    """

    name: str
    code: int
    klass: str
    nlit: int
    generic: str
    suffix: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


def _split(name: str) -> Tuple[str, str]:
    """Split an operator name into (generic, suffix)."""
    if name in ("BrTrue", "LABELV"):
        return name, ""
    if name.startswith("LocalCALL"):
        return "LocalCALL", name[len("LocalCALL"):]
    if name.startswith("ADDR"):  # ADDRFP / ADDRGP / ADDRLP
        return name[:5], name[5:]
    if name.startswith("LIT"):
        return "LIT", name[3:]
    if name.startswith("CV"):  # CVDF, CVI1I4, ...
        return name[:3], name[3:]
    return name[:-1], name[-1]


# The full instruction set, class by class, in Appendix-2 order.  Each entry
# is (name, nlit).
_V2 = [
    "ADDD", "DIVD", "MULD", "SUBD",
    "ADDF", "DIVF", "MULF", "SUBF",
    "DIVI", "MODI", "MULI",
    "ADDU", "DIVU", "MODU", "MULU", "SUBU",
    "BANDU", "BORU", "BXORU",
    "EQD", "GED", "GTD", "LED", "LTD", "NED",
    "EQF", "GEF", "GTF", "LEF", "LTF", "NEF",
    "GEI", "GTI", "LEI", "LTI",
    "EQU", "GEU", "GTU", "LEU", "LTU", "NEU",
    "LSHI", "LSHU", "RSHI", "RSHU",
]

_V1 = [
    "BCOMU",
    "CALLD", "CALLF", "CALLU",
    "CVDF", "CVDI", "CVFD", "CVFI",
    "CVID", "CVIF",
    "CVI1I4", "CVI2I4", "CVU1U4", "CVU2U4",
    "INDIRC", "INDIRS", "INDIRU",
    "INDIRD", "INDIRF",
    "NEGD", "NEGF", "NEGI",
]

_V0 = [
    ("ADDRFP", 2), ("ADDRGP", 2), ("ADDRLP", 2),
    ("LocalCALLD", 2), ("LocalCALLF", 2), ("LocalCALLU", 2),
    ("LIT1", 1), ("LIT2", 2), ("LIT3", 3), ("LIT4", 4),
]

_X2 = ["ASGNB", "ASGNC", "ASGNS", "ASGNU", "ASGND", "ASGNF"]

_X1 = [
    ("ARGB", 0), ("ARGD", 0), ("ARGF", 0), ("ARGU", 0),
    ("BrTrue", 2), ("CALLV", 0),
    ("POPD", 0), ("POPF", 0), ("POPU", 0),
    ("RETD", 0), ("RETF", 0), ("RETU", 0),
]

_X0 = [("JUMPV", 2), ("LocalCALLV", 2), ("RETV", 0)]


def _build() -> List[OpSpec]:
    specs: List[OpSpec] = []
    code = 0

    def add(name: str, klass: str, nlit: int) -> None:
        nonlocal code
        generic, suffix = _split(name)
        specs.append(OpSpec(name, code, klass, nlit, generic, suffix))
        code += 1

    for name, nlit in _V0:
        add(name, "v0", nlit)
    for name in _V1:
        add(name, "v1", 0)
    for name in _V2:
        add(name, "v2", 0)
    for name, nlit in _X0:
        add(name, "x0", nlit)
    for name, nlit in _X1:
        add(name, "x1", nlit)
    for name in _X2:
        add(name, "x2", 0)
    add("LABELV", "pseudo", 0)
    return specs


OPS: List[OpSpec] = _build()
OP_BY_NAME: Dict[str, OpSpec] = {op.name: op for op in OPS}
OP_BY_CODE: Dict[int, OpSpec] = {op.code: op for op in OPS}

LABELV: OpSpec = OP_BY_NAME["LABELV"]


def opcode(name: str) -> int:
    """Return the byte value of the named operator."""
    return OP_BY_NAME[name].code


def opname(code: int) -> str:
    """Return the name of the operator with the given byte value."""
    return OP_BY_CODE[code].name
