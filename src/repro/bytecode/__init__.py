"""The initial stack-based bytecode (paper Section 3, Appendices 1-3)."""

from .opcodes import OPS, OP_BY_NAME, OP_BY_CODE, OpSpec, opcode, opname
from .instructions import Instruction, encode, decode, iter_decode, instr
from .module import GlobalEntry, Module, Procedure
from .assembler import AssemblyError, ProcedureBuilder, assemble, disassemble
from .validate import ValidationError, validate_module, validate_procedure

__all__ = [
    "OPS", "OP_BY_NAME", "OP_BY_CODE", "OpSpec", "opcode", "opname",
    "Instruction", "encode", "decode", "iter_decode", "instr",
    "GlobalEntry", "Module", "Procedure",
    "AssemblyError", "ProcedureBuilder", "assemble", "disassemble",
    "ValidationError", "validate_module", "validate_procedure",
]
