"""High-level pipeline: the one-stop public API (Figure 1 of the paper).

    train_grammar(corpus)            # training phase: expanded grammar
    compress_module(grammar, prog)   # compression phase: derivation bytes
    run / run_compressed             # the two interpreters

Example::

    from repro import compile_source, train_grammar, compress_module
    from repro import run, run_compressed

    training = [compile_source(src) for src in corpus_sources]
    grammar, report = train_grammar(training)
    program = compile_source(app_source)
    compressed = compress_module(grammar, program)
    assert run(program) == run_compressed(compressed)
"""

from __future__ import annotations

import time
from typing import Iterable, Optional, Tuple

from .bytecode.module import Module
from .coding.model import attach_counts
from .compress.compressor import Compressor
from .compress.container import CompressedModule
from .grammar.cfg import Grammar
from .grammar.initial import initial_grammar
from .interp.compiled import CompiledEngine
from .interp.interp1 import Interpreter1
from .interp.interp2 import Interpreter2
from .interp.runtime import run_program
from .parsing.stackparser import build_forest
from .training import resolve_strategy
from .training.expander import TrainingReport

__all__ = [
    "train_grammar", "compress_module", "run", "run_compressed",
    "compression_ratio",
]


def train_grammar(corpus: Iterable[Module], *,
                  grammar: Optional[Grammar] = None,
                  max_rules_per_nt: int = 256,
                  min_count: int = 2,
                  remove_subsumed: bool = True,
                  max_iterations: Optional[int] = None,
                  parser_workers: Optional[int] = None,
                  index_mode: str = "incremental",
                  collect_stats: bool = False,
                  strategy="greedy",
                  strategy_params: Optional[dict] = None,
                  ) -> Tuple[Grammar, TrainingReport]:
    """The training phase (paper Sections 2 and 4.1).

    Parses the corpus with the initial grammar and expands it with the
    selected trainer strategy.  Returns the expanded grammar and a
    :class:`TrainingReport` carrying the strategy's identity and knobs
    (persisted as provenance by the registry).

    ``strategy`` names a :class:`~repro.training.TrainerStrategy`
    (``"greedy"`` — the paper's profiled edge-contraction loop,
    ``"repair"`` — MR-RePair maximal-repeat seeding only, ``"hybrid"``
    — seeding then greedy refinement) or is a strategy class/instance;
    ``strategy_params`` are its constructor knobs (e.g.
    ``{"budget_frac": 0.25}`` for the seeding strategies).

    ``parser_workers`` > 1 parses the corpus's procedures on a thread
    pool with a deterministic, corpus-order merge — the trained grammar
    is identical for every worker count.  ``index_mode="naive"`` swaps
    the incremental edge index for the full-recount oracle (same result,
    much slower; for verification and benchmarking).  ``collect_stats``
    returns a :class:`~repro.training.expander.TrainingStats` with
    per-phase (parse/seed/refine) timings, per-iteration wall times,
    and heap behaviour.

    The trained grammar also carries its rule-frequency model counts
    (``grammar.coding_counts``, recounted from the post-training
    forest) — the estimation side of the RCX2 entropy coder; they are
    persisted by ``save_grammar`` and the registry.
    """
    strat = resolve_strategy(strategy, **(strategy_params or {}))
    if grammar is None:
        grammar = initial_grammar(max_rules_per_nt=max_rules_per_nt)
    corpus = list(corpus)
    parse_start = time.perf_counter()
    forest = build_forest(grammar, corpus, workers=parser_workers)
    parse_seconds = time.perf_counter() - parse_start
    report = strat.train(
        grammar, forest,
        min_count=min_count,
        remove_subsumed=remove_subsumed,
        max_iterations=max_iterations,
        index_mode=index_mode,
        collect_stats=collect_stats,
    )
    attach_counts(grammar, forest, corpus)
    report.wall_seconds = time.perf_counter() - parse_start
    if collect_stats:
        report.parse_seconds = parse_seconds
        report.parser_workers = parser_workers or 1
    return grammar, report


def compress_module(grammar: Grammar, module: Module,
                    engine: str = "tiling") -> CompressedModule:
    """The compression phase: shortest derivations, one byte per step."""
    return Compressor(grammar, engine).compress_module(module)


def run(module: Module, *args: int,
        input_data: bytes = b"") -> Tuple[int, bytes]:
    """Run uncompressed bytecode on the initial interpreter."""
    return run_program(module, Interpreter1(module), *args,
                       input_data=input_data)


def run_compressed(cmodule: CompressedModule, *args: int,
                   input_data: bytes = b"",
                   engine: str = "compiled") -> Tuple[int, bytes]:
    """Run compressed bytecode on the generated interpreter.

    ``engine`` selects the executor: ``"compiled"`` (default) is the
    precompiled direct-threaded engine, ``"reference"`` the recursive
    transliteration of the paper's ``interpNT`` — behaviourally
    identical, kept as the testing oracle — and ``"native"`` the
    machine-code engine compiled from the generated C (raises
    :class:`~repro.interp.nativebuild.NativeBuildError` when no C
    compiler is available; see :mod:`repro.interp.native`).
    """
    if engine == "compiled":
        executor = CompiledEngine(cmodule)
    elif engine == "reference":
        executor = Interpreter2(cmodule)
    elif engine == "native":
        from .interp.native import run_native
        return run_native(cmodule, *args, input_data=input_data)
    else:
        raise ValueError(f"unknown engine {engine!r}")
    return run_program(cmodule, executor, *args, input_data=input_data)


def compression_ratio(grammar: Grammar, module: Module) -> float:
    """compressed code bytes / original code bytes (paper Section 6)."""
    compressed = compress_module(grammar, module)
    return compressed.code_bytes / module.code_bytes
