"""``python -m repro`` entry point."""

import sys

from .cli import main

# The guard matters: fleet workers are multiprocessing "spawn" children,
# and spawn re-imports __main__ in the child — an unguarded exit here
# would re-run the CLI instead of the worker.
if __name__ == "__main__":
    sys.exit(main())
