#!/usr/bin/env python3
"""Import-layering lint for the repro package.

The architecture is a strict layering (see docs/ARCHITECTURE.md):

    faults, bytecode                          (0)
    grammar, native                           (1)   # x86 size model —
                                                    # interp/native.py (the
                                                    # C engine) is "interp"
    core                                      (2)
    parsing                                   (3)
    interp, coding                            (4)   # coding may depend on
                                                    # core/parsing, never on
                                                    # compress or the service
    minic, compress                           (5)
    corpus, storage, opt, training            (6)
    baselines, registry, pipeline             (7)
    experiments, service                      (8)
    cli                                       (9)
    __main__                                  (10)

Rules enforced, by AST walk (no imports executed):

1. A *module-level* import may only reach strictly lower layers — e.g.
   ``parsing`` must not import ``interp``, ``core`` must not import
   ``storage``.  Function-local imports are exempt (they express a
   deliberate late binding, e.g. the CLI loading the service stack), but
   rule 2 still applies to them.
2. Nothing, at any level, imports ``cli`` or ``__main__`` — the command
   line is the top of the stack, not a library.  (``__main__`` itself is
   the entry point and may import ``cli``.)
3. Within packages that declare SUB_RANKS (currently ``training``:
   edges < inline < expander < oracle/strategy < greedy/repair), a
   module-level import of a ranked sibling must also point strictly
   down — the trainer-strategy seam can't grow upward imports into the
   primitives it is built from.

Exit status 0 when clean; 1 with one line per violation otherwise.
Run from the repository root::

    python tools/check_layering.py
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

PACKAGE = "repro"
SRC = Path(__file__).resolve().parent.parent / "src" / PACKAGE

#: package (or top-level module) name -> layer rank
RANKS = {
    "faults": 0, "bytecode": 0,
    "grammar": 1, "native": 1,
    "core": 2,
    "parsing": 3,
    "interp": 4, "coding": 4,
    "minic": 5, "compress": 5,
    "corpus": 6, "storage": 6, "opt": 6, "training": 6,
    "baselines": 7, "registry": 7, "pipeline": 7,
    "experiments": 8, "service": 8,
    "cli": 9,
    "__main__": 10,
}

#: modules no one may import, even lazily
FORBIDDEN = {"cli", "__main__"}

#: fine-grained ranks *inside* a package: module-level imports between
#: ranked siblings must also point strictly down.  The training package
#: is layered so the strategy seam (strategy -> greedy/repair) can never
#: grow upward imports into the primitives it is built from, and the
#: frozen oracle stays parallel to (never entangled with) the live
#: expander.  Unlisted modules (e.g. __init__) may import any sibling.
SUB_RANKS = {
    "training": {
        "edges": 0,
        "inline": 1,
        "expander": 2,
        "oracle": 3, "strategy": 3,
        "greedy": 4, "repair": 4,
    },
}


def _top_component(path: Path, src: Path) -> str:
    """The layer a source file belongs to (its top-level subpackage, or
    the module name for top-level .py files)."""
    rel = path.relative_to(src)
    if len(rel.parts) == 1:
        name = rel.stem
        return PACKAGE if name == "__init__" else name
    return rel.parts[0]


def _module_level_fn(tree: ast.AST):
    """A predicate: is this node outside any function/lambda body?"""
    parents = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[child] = node

    def module_level(node) -> bool:
        cur = parents.get(node)
        while cur is not None:
            if isinstance(cur, (ast.FunctionDef, ast.AsyncFunctionDef,
                                ast.Lambda)):
                return False
            cur = parents.get(cur)
        return True

    return module_level


def _imported_components(tree: ast.AST, path: Path, src: Path):
    """Yield (component, lineno, is_module_level) for every intra-package
    import in the file."""
    rel_parts = path.relative_to(src).parts
    module_level = _module_level_fn(tree)
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                parts = alias.name.split(".")
                if parts[0] == PACKAGE and len(parts) > 1:
                    yield parts[1], node.lineno, module_level(node)
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                # Relative import: resolve against this file's package.
                # level=1 in pkg/mod.py -> repro/pkg; in pkg/__init__.py
                # -> repro/pkg as well (its package is itself).
                base = list(rel_parts[:-1])
                up = node.level - 1
                base = base[:len(base) - up] if up else base
                parts = base + (node.module.split(".")
                                if node.module else [])
                if parts:
                    yield parts[0], node.lineno, module_level(node)
                else:
                    # `from .. import x` at the top: names are components
                    for alias in node.names:
                        yield alias.name, node.lineno, module_level(node)
            else:
                parts = node.module.split(".") if node.module else []
                if parts and parts[0] == PACKAGE:
                    if len(parts) > 1:
                        yield parts[1], node.lineno, module_level(node)
                    else:
                        for alias in node.names:
                            yield (alias.name, node.lineno,
                                   module_level(node))


def _sibling_imports(tree: ast.AST, path: Path, src: Path):
    """Yield (submodule, lineno, is_module_level) for every import that
    targets a module of the same subpackage as ``path`` (for the
    fine-grained SUB_RANKS rule)."""
    rel_parts = path.relative_to(src).parts
    if len(rel_parts) < 2:
        return
    pkg = rel_parts[0]
    module_level = _module_level_fn(tree)
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                parts = alias.name.split(".")
                if parts[:2] == [PACKAGE, pkg] and len(parts) > 2:
                    yield parts[2], node.lineno, module_level(node)
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                base = list(rel_parts[:-1])
                up = node.level - 1
                base = base[:len(base) - up] if up else base
                parts = base + (node.module.split(".")
                                if node.module else [])
            elif node.module and node.module.split(".")[0] == PACKAGE:
                parts = node.module.split(".")[1:]
            else:
                continue
            if not parts or parts[0] != pkg:
                continue
            if len(parts) > 1:
                yield parts[1], node.lineno, module_level(node)
            else:
                # `from . import x`: the names may be sibling modules.
                for alias in node.names:
                    yield alias.name, node.lineno, module_level(node)


def check(src: Path = SRC):
    """All layering violations in the tree, as printable strings."""
    violations = []
    for path in sorted(src.rglob("*.py")):
        component = _top_component(path, src)
        rank = RANKS.get(component)
        tree = ast.parse(path.read_text(), filename=str(path))
        sub = SUB_RANKS.get(component)
        mod_rank = sub.get(path.stem) if sub else None
        if mod_rank is not None:
            for target, lineno, at_module_level in \
                    _sibling_imports(tree, path, src):
                target_rank = sub.get(target)
                if target_rank is None or target == path.stem \
                        or not at_module_level:
                    continue
                if target_rank >= mod_rank:
                    violations.append(
                        f"{path.relative_to(src.parent)}:{lineno}: "
                        f"{component}.{path.stem} (sub-layer {mod_rank}) "
                        f"imports {component}.{target} "
                        f"(sub-layer {target_rank}) at module level")
        for target, lineno, at_module_level in \
                _imported_components(tree, path, src):
            where = f"{path.relative_to(src.parent)}:{lineno}"
            if target in FORBIDDEN and component != target \
                    and component != "__main__":
                # __main__ is the entry point; it alone sits above cli.
                violations.append(
                    f"{where}: imports {PACKAGE}.{target} "
                    f"(the command line is not a library)")
                continue
            target_rank = RANKS.get(target)
            if rank is None or target_rank is None:
                continue  # helper names from `from .. import x`, etc.
            if component == target:
                continue
            if at_module_level and target_rank >= rank:
                violations.append(
                    f"{where}: {component} (layer {rank}) imports "
                    f"{target} (layer {target_rank}) at module level")
    return violations


def main() -> int:
    violations = check()
    for line in violations:
        print(line)
    if violations:
        print(f"{len(violations)} layering violation(s)")
        return 1
    print("layering clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
