#!/usr/bin/env python3
"""Inspect the automatically designed instruction set (Sections 4-5).

Training turns grammar rules into a *custom bytecoded instruction set*:
every rule of the expanded grammar is one instruction of the generated
interpreter.  This example trains on a small corpus and then shows what
the system invented — the most-used learned instructions, rules with
partially burned-in literals ("a specialized jump bytecode for which the
first of two literal bytes is constrained to be zero"), and rules spanning
several statements (the advantage over superoperators).

Run:  python examples/inspect_isa.py
"""

from collections import Counter

from repro import compile_source, train_grammar
from repro.compress.compressor import Compressor
from repro.corpus import LCCLIKE
from repro.grammar.cfg import fragment_size, is_byte_terminal
from repro.parsing.forest import preorder
from repro.parsing.stackparser import parse_blocks

def main():
    module = compile_source(LCCLIKE)
    grammar, report = train_grammar([module])
    print(f"trained on the lcc-like program: {report.iterations} inlines, "
          f"{grammar.total_rules()} rules total\n")

    # Compress the program and count how often each rule (i.e. each new
    # instruction) is used in the compressed encoding.
    comp = Compressor(grammar)
    usage = Counter()
    for proc in module.procedures:
        for block in parse_blocks(grammar, proc.code):
            for node in preorder(comp._tiler.tile(block.tree)):
                usage[node.rule_id] += 1

    start = grammar.nonterminal("start")

    print("top learned instructions (rule, uses, original ops covered):")
    shown = 0
    for rule_id, count in usage.most_common():
        rule = grammar.rules[rule_id]
        if rule.origin != "inlined":
            continue
        print(f"  {count:5d}x  [{fragment_size(rule.fragment):2d} ops]  "
              f"{grammar.rule_str(rule)}")
        shown += 1
        if shown == 10:
            break

    print("\nspecialized literals (bytes burned into rules, Section 5):")
    shown = 0
    for rule in grammar:
        if rule.origin == "inlined" and any(
                is_byte_terminal(s) for s in rule.rhs):
            print(f"  {grammar.rule_str(rule)}")
            shown += 1
            if shown == 6:
                break

    print("\nrules spanning several statements (impossible for "
          "superoperators):")
    shown = 0
    for rule in grammar:
        if rule.origin == "inlined" and rule.lhs == start and \
                len(rule.rhs) > 2:
            print(f"  {grammar.rule_str(rule)}")
            shown += 1
            if shown == 5:
                break

    compressed = comp.compress_module(module)
    print(f"\nnet effect: {module.code_bytes} -> "
          f"{compressed.code_bytes} bytes "
          f"({compressed.code_bytes / module.code_bytes:.0%})")

    # Static frequency drove training; what runs is a different story.
    from repro.interp.profile import profile_run

    _, _, prof = profile_run(compressed)
    print(f"\ndynamic profile of one run: {prof.total_operators} "
          f"operators, {sum(prof.rules.values())} rule dispatches, "
          f"{prof.blocks_entered} block entries")
    print("hottest rules at run time (vs their static use above):")
    for (nt, codeword), count in prof.top_rules(5):
        rule = grammar.rules[grammar.by_lhs[nt][codeword]]
        print(f"  {count:6d}x  {grammar.rule_str(rule)}")


if __name__ == "__main__":
    main()
