#!/usr/bin/env bash
# Trainer-matrix smoke test: every trainer strategy through the real CLI
# — train, store with provenance, and read the trainer identity back via
# `repro registry show` and `repro grammar stats`.  Run from the
# repository root (CI does); needs only PYTHONPATH=src.
set -euo pipefail

WORK="$(mktemp -d)"
cleanup() { rm -rf "$WORK"; }
trap cleanup EXIT

cat > "$WORK/app.c" <<'EOF'
int fib(int n) { return n < 2 ? n : fib(n - 1) + fib(n - 2); }
int main(void) { putint(fib(10)); putchar('\n'); return 0; }
EOF

python -m repro compile "$WORK/app.c" -o "$WORK/app.rbc"

for TRAINER in greedy repair hybrid; do
    echo "== train --trainer $TRAINER =="
    python -m repro train "$WORK/app.rbc" -o "$WORK/$TRAINER.rgr" \
        --trainer "$TRAINER" --registry "$WORK/reg" --tag "$TRAINER" \
        | tee "$WORK/$TRAINER.train.out"
    grep -q "\[$TRAINER\]" "$WORK/$TRAINER.train.out" \
        || { echo "train output missing [$TRAINER] marker" >&2; exit 1; }

    echo "== provenance: registry show =="
    python -m repro registry -d "$WORK/reg" show "$TRAINER" \
        | tee "$WORK/$TRAINER.show.out"
    grep -q "\"trainer\": \"$TRAINER\"" "$WORK/$TRAINER.show.out" \
        || { echo "registry meta missing trainer id" >&2; exit 1; }

    echo "== provenance: grammar stats =="
    python -m repro grammar -d "$WORK/reg" stats "$TRAINER" \
        | tee "$WORK/$TRAINER.stats.out"
    grep -q "trainer $TRAINER" "$WORK/$TRAINER.stats.out" \
        || { echo "grammar stats missing trainer line" >&2; exit 1; }

    echo "== the trained grammar round-trips the corpus =="
    python -m repro compress "$WORK/app.rbc" -g "$WORK/$TRAINER.rgr" \
        -o "$WORK/$TRAINER.rcx"
    python -m repro decompress "$WORK/$TRAINER.rcx" \
        -o "$WORK/$TRAINER.back.rbc"
    cmp "$WORK/app.rbc" "$WORK/$TRAINER.back.rbc"
    OUT="$(python -m repro run "$WORK/$TRAINER.rcx")"
    [[ "$OUT" == "55" ]] || { echo "expected 55, got: $OUT" >&2; exit 1; }
done

echo "trainer smoke test passed"
