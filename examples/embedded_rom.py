#!/usr/bin/env python3
"""The embedded-ROM scenario that motivates the paper (Section 1).

"Competition drives manufacturers to add features ... saving ROM or
packing more features into a fixed-size ROM can give a competitive
advantage.  Moreover, it may be unwise or impossible to decompress the ROM
temporarily to RAM."

This example plays that out: a device has a fixed ROM budget and a menu of
candidate features (each a mini-C program).  We count how many features
fit (a) as uncompressed bytecode plus the small interpreter, and (b) as
compressed bytecode plus the larger generated interpreter — the space the
grammar costs up front is repaid across features, because *one* grammar
serves all of them.

Run:  python examples/embedded_rom.py
"""

from repro import compile_source, compress_module, run, run_compressed, \
    train_grammar
from repro.corpus.synth import generate_functions
from repro.interp.sizes import measure_sizes

ROM_BUDGET = 24_000  # bytes for code + interpreter


def make_feature(index: int) -> str:
    """One 'firmware feature': a handful of generated handlers plus a
    dispatcher (deterministic, so results are reproducible)."""
    import random

    seed = 1000 + index
    functions = generate_functions(12, seed=seed, prefix=f"f{index}_")
    # generate_functions draws each function's arity from Random(seed) in
    # order; replay that to call the handlers correctly.
    rng = random.Random(seed)
    arities = [rng.randrange(1, 4) for _ in range(12)]
    calls = " ^ ".join(
        f"f{index}_{i}({', '.join(str(3 + j) for j in range(arities[i]))})"
        for i in (0, 5, 11)
    )
    return "\n".join(functions) + f"""

int main(void) {{
    int acc;
    acc = {calls};
    putint(acc);
    putchar('\\n');
    return 0;
}}
"""


def main():
    features = [compile_source(make_feature(i)) for i in range(24)]
    sizes = [m.code_bytes for m in features]
    print(f"{len(features)} candidate features, "
          f"{min(sizes)}-{max(sizes)} bytecode bytes each, "
          f"{sum(sizes)} total")

    # Train one grammar on a representative sample of the firmware.
    grammar, _ = train_grammar(features[:8])
    interp = measure_sizes(grammar)
    print(f"interpreter: {interp.interp1} B uncompressed-bytecode / "
          f"{interp.interp2} B compressed-bytecode "
          f"(grammar {interp.grammar} B)")

    def fit(budget, per_feature_sizes, interp_bytes):
        room = budget - interp_bytes
        count = 0
        for size in per_feature_sizes:
            if size > room:
                break
            room -= size
            count += 1
        return count

    plain_fit = fit(ROM_BUDGET, sizes, interp.interp1)

    compressed = [compress_module(grammar, m) for m in features]
    csizes = [c.code_bytes for c in compressed]
    comp_fit = fit(ROM_BUDGET, csizes, interp.interp2)

    print(f"\nROM budget: {ROM_BUDGET} bytes")
    print(f"  uncompressed: {plain_fit} features fit "
          f"({interp.interp1} B interpreter + "
          f"{sum(sizes[:plain_fit])} B bytecode)")
    print(f"  compressed:   {comp_fit} features fit "
          f"({interp.interp2} B interpreter + "
          f"{sum(csizes[:comp_fit])} B bytecode)")
    print(f"  average feature ratio: "
          f"{sum(csizes) / sum(sizes):.0%}")

    assert comp_fit > plain_fit, "compression should pack more features"

    # And the features still run, straight from the compressed form.
    sample = 5
    assert run_compressed(compressed[sample]) == run(features[sample])
    print(f"\nfeature {sample} runs identically from ROM'd compressed "
          f"bytecode: {run(features[sample])[1].decode().strip()!r}")


if __name__ == "__main__":
    main()
