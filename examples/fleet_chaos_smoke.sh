#!/usr/bin/env bash
# Fleet chaos smoke: run a 2-worker fleet, SIGKILL one worker mid-run,
# and prove a retrying client rides through while the supervisor
# respawns the worker.  Run from the repository root (CI does); needs
# only PYTHONPATH=src.
set -euo pipefail

PORT="${SMOKE_PORT:-7343}"
WORK="$(mktemp -d)"
SERVER_PID=""
cleanup() {
    if [[ -n "$SERVER_PID" ]] && kill -0 "$SERVER_PID" 2>/dev/null; then
        kill -TERM "$SERVER_PID" 2>/dev/null || true
        wait "$SERVER_PID" 2>/dev/null || true
    fi
    rm -rf "$WORK"
}
trap cleanup EXIT

cat > "$WORK/app.c" <<'EOF'
int fib(int n) { return n < 2 ? n : fib(n - 1) + fib(n - 2); }
int main(void) { putint(fib(10)); putchar('\n'); return 0; }
EOF

echo "== compile + train + register =="
python -m repro compile "$WORK/app.c" -o "$WORK/app.rbc"
python -m repro train "$WORK/app.rbc" -o "$WORK/g.rgr"
python -m repro registry -d "$WORK/reg" add "$WORK/g.rgr" --tag prod

echo "== serve a 2-worker fleet =="
python -m repro serve -d "$WORK/reg" --port "$PORT" --workers 2 &
SERVER_PID=$!
for _ in $(seq 1 50); do
    if python -m repro client --port "$PORT" health >/dev/null 2>&1; then
        break
    fi
    sleep 0.2
done
python -m repro client --port "$PORT" health

echo "== baseline compress =="
python -m repro client --port "$PORT" compress "$WORK/app.rbc" -g prod \
    -o "$WORK/before.rcx"

echo "== SIGKILL one worker mid-run =="
VICTIM="$(python -m repro client --port "$PORT" stats | python -c '
import json, sys
fleet = json.load(sys.stdin)["fleet"]
assert fleet["workers"] == 2 and fleet["alive"] == 2, fleet
print(next(w["pid"] for w in fleet["per_worker"].values() if w["up"]))
')"
echo "killing worker pid $VICTIM"
kill -KILL "$VICTIM"

echo "== retrying client rides through the kill =="
python -m repro client --port "$PORT" --retries 8 --deadline 30 \
    compress "$WORK/app.rbc" -g prod -o "$WORK/after.rcx"
cmp "$WORK/before.rcx" "$WORK/after.rcx"
echo "post-kill compress is byte-identical"

echo "== supervisor respawned the worker =="
for _ in $(seq 1 50); do
    ALIVE="$(python -m repro client --port "$PORT" health \
        | python -c 'import json,sys; print(json.load(sys.stdin)["workers"]["alive"])')"
    [[ "$ALIVE" == "2" ]] && break
    sleep 0.2
done
[[ "$ALIVE" == "2" ]] || { echo "fleet did not heal: alive=$ALIVE" >&2; exit 1; }
python -m repro client --port "$PORT" stats | python -c '
import json, sys
fleet = json.load(sys.stdin)["fleet"]
assert fleet["alive"] == 2, fleet
assert fleet["restarts_total"] >= 1, fleet
print("fleet healed:", json.dumps({k: fleet[k] for k in
      ("workers", "alive", "restarts_total", "worker_lost_total")}))
'

echo "== SIGTERM drains the whole fleet =="
kill -TERM "$SERVER_PID"
wait "$SERVER_PID"
SERVER_PID=""
echo "fleet chaos smoke test passed"
