#!/usr/bin/env python3
"""Quickstart: the whole pipeline on one small program.

Compile mini-C to the stack bytecode, train an expanded grammar on a
corpus, compress, and run both representations — the compressed one runs
*directly* on the generated interpreter, with no decompression step
(the paper's whole point).

Run:  python examples/quickstart.py
"""

import repro

CORPUS = [
    """
    int sum_to(int n) {
        int i, s;
        s = 0;
        for (i = 1; i <= n; i++) s += i;
        return s;
    }
    int main(void) { putint(sum_to(100)); putchar('\\n'); return 0; }
    """,
    """
    int gcd(int a, int b) { return b == 0 ? a : gcd(b, a % b); }
    int main(void) { putint(gcd(1071, 462)); putchar('\\n'); return 0; }
    """,
    """
    int main(void) {
        int i;
        for (i = 2; i < 40; i++) {
            int d, prime;
            prime = 1;
            for (d = 2; d * d <= i; d++)
                if (i % d == 0) prime = 0;
            if (prime) { putint(i); putchar(' '); }
        }
        putchar('\\n');
        return 0;
    }
    """,
]

APP = """
int collatz_len(int n) {
    int steps;
    steps = 0;
    while (n != 1) {
        if (n % 2 == 0) n = n / 2;
        else n = 3 * n + 1;
        steps++;
    }
    return steps;
}

int main(void) {
    int n, best, best_n;
    best = 0; best_n = 0;
    for (n = 1; n <= 60; n++) {
        int len;
        len = collatz_len(n);
        if (len > best) { best = len; best_n = n; }
    }
    putstr("longest Collatz chain under 60: n=");
    putint(best_n);
    putstr(" (");
    putint(best);
    putstr(" steps)\\n");
    return 0;
}
"""


def main():
    print("1. compiling the training corpus (mini-C -> stack bytecode)")
    training = [repro.compile_source(src) for src in CORPUS]
    training.append(repro.compile_source(APP))
    for i, module in enumerate(training):
        print(f"   corpus[{i}]: {module.code_bytes} bytecode bytes, "
              f"{len(module.procedures)} procedures")

    print("\n2. training: profiled grammar rewriting (Section 4.1)")
    grammar, report = repro.train_grammar(training)
    print(f"   {report.iterations} inlining steps, "
          f"{report.rules_added - report.rules_removed} rules kept, "
          f"training forest {report.initial_size} -> {report.final_size} "
          f"derivation steps")

    print("\n3. compressing the application (shortest derivation)")
    program = repro.compile_source(APP)
    compressed = repro.compress_module(grammar, program)
    ratio = compressed.code_bytes / program.code_bytes
    print(f"   {program.code_bytes} -> {compressed.code_bytes} bytes "
          f"({ratio:.0%}; the paper's corpus ratios were 29-42%)")

    print("\n4. executing both representations")
    code1, out1 = repro.run(program)
    code2, out2 = repro.run_compressed(compressed)
    print(f"   uncompressed interpreter: exit={code1}, "
          f"output={out1.decode()!r}")
    print(f"   compressed interpreter:   exit={code2}, "
          f"output={out2.decode()!r}")
    assert (code1, out1) == (code2, out2), "behaviour must be identical"

    print("\n5. and the compressed form is complete: decompressing it "
          "reproduces the original bytecode byte-for-byte")
    back = repro.decompress_module(compressed)
    assert all(a.code == b.code for a, b in
               zip(back.procedures, program.procedures))
    print("   round-trip OK")


if __name__ == "__main__":
    main()
