#!/usr/bin/env bash
# Service smoke test: the full train-once / compress-many loop through a
# real `repro serve` process and the `repro client` CLI.  Run from the
# repository root (CI does); needs only PYTHONPATH=src.
# SMOKE_WORKERS=N runs the same flow against a multi-process fleet.
set -euo pipefail

PORT="${SMOKE_PORT:-7339}"
WORKERS="${SMOKE_WORKERS:-0}"
WORK="$(mktemp -d)"
SERVER_PID=""
cleanup() {
    if [[ -n "$SERVER_PID" ]] && kill -0 "$SERVER_PID" 2>/dev/null; then
        kill -TERM "$SERVER_PID" 2>/dev/null || true
        wait "$SERVER_PID" 2>/dev/null || true
    fi
    rm -rf "$WORK"
}
trap cleanup EXIT

cat > "$WORK/app.c" <<'EOF'
int fib(int n) { return n < 2 ? n : fib(n - 1) + fib(n - 2); }
int main(void) { putint(fib(10)); putchar('\n'); return 0; }
EOF

echo "== compile + train =="
python -m repro compile "$WORK/app.c" -o "$WORK/app.rbc"
python -m repro train "$WORK/app.rbc" -o "$WORK/g.rgr"

echo "== registry add (content-addressed, tagged) =="
HASH="$(python -m repro registry -d "$WORK/reg" add "$WORK/g.rgr" --tag prod)"
echo "grammar hash: $HASH"
python -m repro registry -d "$WORK/reg" list

echo "== serve (workers=$WORKERS) =="
python -m repro serve -d "$WORK/reg" --port "$PORT" \
    --workers "$WORKERS" &
SERVER_PID=$!
for _ in $(seq 1 50); do
    if python -m repro client --port "$PORT" health >/dev/null 2>&1; then
        break
    fi
    sleep 0.2
done
python -m repro client --port "$PORT" health

echo "== compress -> decompress -> run through the client =="
python -m repro client --port "$PORT" compress "$WORK/app.rbc" -g prod \
    -o "$WORK/app.rcx"
python -m repro client --port "$PORT" decompress "$WORK/app.rcx" \
    -o "$WORK/back.rbc"
cmp "$WORK/app.rbc" "$WORK/back.rbc"
echo "round trip is byte-identical"

OUT="$(python -m repro client --port "$PORT" run "$WORK/app.rcx")"
[[ "$OUT" == "55" ]] || { echo "expected 55, got: $OUT" >&2; exit 1; }
echo "remote execution output: $OUT"

echo "== stats reflect the traffic =="
python -m repro client --port "$PORT" stats > "$WORK/stats.json"
python - "$WORK/stats.json" <<'EOF'
import json
import sys

stats = json.load(open(sys.argv[1]))
requests = stats["counters"]["requests_total"]
for method in ("compress", "decompress", "run_compressed"):
    assert requests.get(f"{method}|ok", 0) >= 1, (method, requests)
assert stats["counters"]["bytes_in_total"] > 0
assert stats["counters"]["bytes_out_total"] > 0
assert stats["histograms"]["batch_size"]["count"] >= 1
assert stats["histograms"]["request_seconds"]["compress"]["count"] == 1
print("stats OK:", json.dumps(requests))
EOF

echo "== SIGTERM drains cleanly =="
kill -TERM "$SERVER_PID"
wait "$SERVER_PID"
SERVER_PID=""
echo "service smoke test passed"
