#!/usr/bin/env python3
"""Cross-training, as in the paper's main table (Section 6).

"Each input was compressed twice, with grammars generated from two
different training sets ... Predictably, lcc and gcc each compress
somewhat better with their own grammar, but the other inputs compress
about as well with either grammar."

We train two grammars — one on the gcc-like corpus, one on the lcc-like
corpus — and compress all four benchmark inputs under each, printing the
paper-shaped table.

Run:  python examples/cross_training.py
"""

from repro import compress_module, train_grammar
from repro.corpus import corpus_sources
from repro.experiments.report import pct, render_table
from repro.minic import compile_source

SCALE = 80  # generated-function count for the gcc-like input


def main():
    modules = {name: compile_source(src)
               for name, src in corpus_sources(SCALE)}
    print("training two grammars (this is the expensive, offline step)...")
    on_gcc, rep_gcc = train_grammar([modules["gcc"]])
    on_lcc, rep_lcc = train_grammar([modules["lcc"]])
    print(f"  gcc grammar: {on_gcc.total_rules()} rules "
          f"({rep_gcc.iterations} inlines)")
    print(f"  lcc grammar: {on_lcc.total_rules()} rules "
          f"({rep_lcc.iterations} inlines)")

    rows = []
    for name in ("gcc", "lcc", "gzip", "8q"):
        module = modules[name]
        a = compress_module(on_gcc, module).code_bytes
        b = compress_module(on_lcc, module).code_bytes
        rows.append((name, module.code_bytes,
                     a, pct(a / module.code_bytes),
                     b, pct(b / module.code_bytes)))

    print()
    print(render_table(
        "compressed size under each training grammar",
        ["input", "original", "on gcc", "ratio", "on lcc", "ratio"],
        rows,
    ))

    by = {r[0]: r for r in rows}
    print()
    if by["gcc"][2] < by["gcc"][4] and by["lcc"][4] < by["lcc"][2]:
        print("as in the paper: each corpus compresses best under its "
              "own grammar,")
        print("while the untrained-on inputs (gzip, 8q) do acceptably "
              "under either.")


if __name__ == "__main__":
    main()
