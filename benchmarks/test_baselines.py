"""A3 — related-work comparison (paper Sections 4 and 7).

The paper argues, method by method:

* Huffman (fixed-to-variable) decodes bit-serially — and here it also
  compresses less than the grammar method (Section 4);
* Tunstall (variable-to-fixed over a memoryless source) loses badly once
  branch targets force restarts and unique parsability (Section 7);
* superoperators capture only within-tree patterns; "allowing a single
  bytecode to span several expression trees and supporting more contexts
  ... leads to substantial improvements in compression" (Section 7);
* the original superoperators also excluded literals, which the follow-up
  fixed (Section 7).

Shape to reproduce, per input: grammar method <= superop-with-literals <=
superop-without-literals, and grammar method < Huffman and < Tunstall.
"""

from repro.compress.compressor import Compressor
from repro.experiments import baseline_rows, corpus, render_table, trained


def test_baselines(benchmark, scale):
    rows = baseline_rows(scale)

    grammar, _ = trained(("gcc",), scale=scale, superop=True)
    module = corpus(scale)["lcc"]
    compressor = Compressor(grammar)
    benchmark.pedantic(
        lambda: compressor.compress_module(module), rounds=3, iterations=1
    )

    print()
    print(render_table(
        "A3: method comparison (bytes; trained on gcc where applicable)",
        ["input", "original", "grammar", "superop", "superop-nolit",
         "huffman", "tunstall", "gzip"],
        [
            (r.input, r.original, r.grammar_m, r.superop,
             r.superop_nolit, r.huffman, r.tunstall, r.gzip)
            for r in rows
        ],
    ))

    for r in rows:
        # Cross-tree patterns + contexts beat superoperators (Section 7).
        assert r.grammar_m <= r.superop, r.input
        # Literal absorption helps superoperators (Section 7).
        assert r.superop <= r.superop_nolit, r.input
        # The grammar method beats both strawmen on every input.
        assert r.grammar_m < r.huffman, r.input
        assert r.grammar_m < r.tunstall, r.input
