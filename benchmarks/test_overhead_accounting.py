"""E5 — remaining-overhead accounting (Section 6's "several other
opportunities for further compression remain").

Paper, for its lcc executable: label tables 9,628 B and global tables
3,940 B ("switching to inline global addresses and branch offsets would
save much of that overhead"); trampolines 1,674 B ("might be unnecessary"
in embedded systems); grammar recoding would save 1,863 B.

We measure the same components for our corpus and check the same
relationships: the out-of-line tables are a real, quantified overhead, and
the straightforward grammar recoding saves a nontrivial fraction.
"""

from repro.experiments import overhead_rows, render_table
from repro.grammar.serialize import (
    decode_grammar,
    encode_grammar_compact,
    encode_grammar_plain,
)
from repro.experiments import trained


def test_overhead_accounting(benchmark, scale):
    rows = overhead_rows("lcc", scale)

    grammar, _ = trained(("lcc",), scale=scale)
    benchmark.pedantic(
        lambda: encode_grammar_compact(grammar), rounds=5, iterations=1
    )

    print()
    print(render_table(
        "E5: overhead accounting (lcc program / lcc-trained grammar)",
        ["component", "bytes", "note"],
        [(r.component, r.bytes, r.note) for r in rows],
    ))

    by_name = {r.component: r for r in rows}
    # Out-of-line tables exist and cost real bytes.
    assert by_name["label tables"].bytes > 0
    assert by_name["global table"].bytes > 0
    assert by_name["trampolines"].bytes > 0
    # Grammar recoding saves a nontrivial fraction (paper: 1,863 of
    # 10,525 = ~18%).
    plain = by_name["grammar (plain)"].bytes
    compact = by_name["grammar (recoded)"].bytes
    assert compact < plain
    assert (plain - compact) / plain > 0.10
    # Both encodings are faithful: decode and compare rule shapes.
    d1 = decode_grammar(encode_grammar_plain(grammar))
    d2 = decode_grammar(encode_grammar_compact(grammar))
    shape = [(r.lhs, r.rhs) for r in grammar]
    assert [(r.lhs, r.rhs) for r in d1] == shape
    assert [(r.lhs, r.rhs) for r in d2] == shape
