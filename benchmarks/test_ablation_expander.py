"""A2 — expander design-choice ablation (Section 4.1).

The paper fixes two knobs without sweeping them: the 256-rule cap per
nonterminal ("so one derivation step is one byte") and greedy
most-frequent-pair inlining.  This bench sweeps the cap and disables the
cross-statement channel, quantifying both choices:

* more rule space monotonically improves compression (until the corpus is
  exhausted) but grows the grammar the interpreter must carry;
* the <start>-spine channel (rules spanning statements) is a measurable
  part of the win — the same quantity Section 7 credits over
  superoperators.
"""

from repro.compress.compressor import Compressor
from repro.experiments import (
    ablation_cap_rows,
    corpus,
    pct,
    render_table,
    trained,
)


def test_ablation_cap(benchmark, scale):
    rows = ablation_cap_rows("lcc", scale, caps=(16, 32, 64, 128, 256))

    benchmark.pedantic(
        lambda: trained(("lcc",), scale=scale, cap=64),
        rounds=1, iterations=1,
    )

    print()
    print(render_table(
        "A2a: rule-cap sweep (lcc input, trained on itself)",
        ["cap", "compressed", "ratio", "rules", "grammar bytes"],
        [(r.label, r.compressed, pct(r.ratio), r.rules, r.grammar_bytes)
         for r in rows],
    ))

    # Compression improves (weakly) with more rule space...
    sizes = [r.compressed for r in rows]
    assert all(a >= b for a, b in zip(sizes, sizes[1:]))
    # ...while the grammar the interpreter carries grows.
    gsizes = [r.grammar_bytes for r in rows]
    assert gsizes[-1] > gsizes[0]


def test_ablation_spanning(benchmark, scale):
    module = corpus(scale)["lcc"]
    full, _ = trained(("lcc",), scale=scale)
    within, _ = trained(("lcc",), scale=scale, superop=True)

    full_bytes = Compressor(full).compress_module(module).code_bytes
    within_bytes = benchmark.pedantic(
        lambda: Compressor(within).compress_module(module).code_bytes,
        rounds=1, iterations=1,
    )

    print()
    print(render_table(
        "A2b: cross-statement rules (lcc input)",
        ["pattern language", "compressed", "ratio"],
        [
            ("within-statement only", within_bytes,
             pct(within_bytes / module.code_bytes)),
            ("spanning statements (full)", full_bytes,
             pct(full_bytes / module.code_bytes)),
        ],
    ))
    # Spanning rules must help (Section 7's central comparison).
    assert full_bytes < within_bytes
