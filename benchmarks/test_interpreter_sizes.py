"""E2 — interpreter sizes (Section 6 prose).

Paper: "The interpreters are small: 7,855 bytes for the initial,
uncompressed bytecode and 18,962 for the bytecode generated from the lcc
training set. ... The grammar occupies 10,525 bytes and thus accounts for
most of the difference in interpreter size."

We regenerate the measurement with the paper's own methodology when a C
compiler is present: emit both interpreters as C, compile with the space
optimizer (cc -Os), measure text+data.  Shape to reproduce: interp2 >
interp1; the growth is dominated by the grammar tables; the growth is far
smaller than the bytecode savings on the large input.
"""

from repro.experiments import (
    PAPER_INTERP_SIZES,
    compressed_code_bytes,
    corpus,
    interpreter_size_row,
    render_table,
)


def test_interpreter_sizes(benchmark, scale):
    sizes = benchmark.pedantic(
        lambda: interpreter_size_row(scale), rounds=1, iterations=1
    )

    print()
    print(render_table(
        "E2: interpreter sizes (bytes)",
        ["quantity", "measured", "paper"],
        [
            ("interpreter 1 (uncompressed bytecode)", sizes.interp1,
             PAPER_INTERP_SIZES["interp1"]),
            ("interpreter 2 (compressed bytecode)", sizes.interp2,
             PAPER_INTERP_SIZES["interp2"]),
            ("encoded grammar", sizes.grammar,
             PAPER_INTERP_SIZES["grammar"]),
            ("growth (interp2 - interp1)", sizes.growth,
             PAPER_INTERP_SIZES["interp2"]
             - PAPER_INTERP_SIZES["interp1"]),
        ],
    ))
    print(f"(sizes {'compiled with cc -Os' if sizes.measured else 'from the fallback model'})")

    assert sizes.interp2 > sizes.interp1
    # The grammar dominates the growth (paper: 10.5KB of 11.1KB).
    assert sizes.grammar > 0.4 * sizes.growth
    # The headline trade: interpreter growth buys much larger bytecode
    # savings on the big input ("11KB of extra space in the interpreter
    # saves over 900KB in the bytecode for gcc").
    original = corpus(scale)["gcc"].code_bytes
    saved = original - compressed_code_bytes("gcc", ("gcc",), scale=scale)
    assert saved > 2 * sizes.growth
