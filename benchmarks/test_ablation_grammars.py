"""A1 — starting-grammar ablation (Section 6's closing note).

Paper: "The current grammar effectively tracks stack height.  A more
complex grammar that tracked the datatype of each element on the stack did
not do significantly better, but grammars that track more state or
different state than the current grammar might improve compression."

Shape to reproduce: the type-tracking grammar lands close to the
stack-height grammar (within a modest factor, not a breakthrough), while
turning off subsumption removal and raising the inline threshold have
visible, explainable effects.
"""

from repro.experiments import ablation_grammar_rows, pct, render_table, trained


def test_ablation_grammars(benchmark, scale):
    rows = ablation_grammar_rows("lcc", scale)

    benchmark.pedantic(
        lambda: trained(("lcc",), scale=scale, typed=True),
        rounds=1, iterations=1,
    )

    print()
    print(render_table(
        "A1: starting-grammar ablation (lcc input, trained on itself)",
        ["configuration", "compressed", "ratio", "rules",
         "grammar bytes"],
        [(r.label, r.compressed, pct(r.ratio), r.rules, r.grammar_bytes)
         for r in rows],
    ))

    by_label = {r.label: r for r in rows}
    base = by_label["stack-height"]
    typed = by_label["type-tracking"]
    # "did not do significantly better": within 25% either way.
    assert typed.compressed < 1.25 * base.compressed
    assert base.compressed < 1.25 * typed.compressed
    # The depth-tracking grammar ("grammars that track more state...
    # might improve compression") also lands in the same band: more
    # contexts fragment the pair statistics at this corpus size.
    depth = by_label["depth-tracking"]
    assert depth.compressed < 1.25 * base.compressed
    assert base.compressed < 1.25 * depth.compressed
    # A higher inline threshold compresses no better (fewer rules learned).
    assert by_label["min_count=4"].compressed >= base.compressed
    # Disabling subsumption removal keeps extra (rarely useful) rules: it
    # can only compress equal-or-marginally-better, at a real grammar-size
    # cost — which is why the paper removes them.
    nosub = by_label["no-subsumption-removal"]
    assert nosub.compressed <= 1.02 * base.compressed
    assert nosub.rules >= base.rules
    assert nosub.grammar_bytes > base.grammar_bytes
