"""S1 — interpretation speed (Sections 1 and 4).

The paper's design target is *zero-overhead decompression*: the compressed
form is interpreted directly, trading some dispatch work (a rule-walking
level between the fetch loop and the operator switch) for ROM savings —
acceptable where "events are so infrequent as to render moot the
traditional objections to direct interpretation".

This bench executes the same program (eight queens, full 92-solution
search) from both representations and reports wall time plus executed
operator counts.  Shape to reproduce: identical operator counts (the
compressed form re-codes, it does not re-optimize) and a modest constant
dispatch overhead for compressed execution.

(Per the reproduction bands: this is the least faithful experiment — both
interpreters are Python, not C, so only the *relative* overhead carries
meaning.)
"""

import time

from repro.compress.compressor import Compressor
from repro.experiments import corpus, render_table, trained
from repro.interp.compiled import CompiledEngine
from repro.interp.interp1 import Interpreter1
from repro.interp.interp2 import Interpreter2
from repro.interp.runtime import Machine


def _run1(module, executor_cls):
    machine = Machine(module, executor_cls(module))
    code = machine.run()
    return code, machine.instret


def test_uncompressed_speed(benchmark, scale):
    module = corpus(scale)["8q"]
    code, instret = benchmark.pedantic(
        lambda: _run1(module, Interpreter1), rounds=3, iterations=1
    )
    assert code == 0
    print(f"\nS1a: uncompressed run: {instret} operators executed")


def test_compressed_speed(benchmark, scale):
    module = corpus(scale)["8q"]
    grammar, _ = trained(("gcc",), scale=scale)
    cmod = Compressor(grammar).compress_module(module)

    code1, instret1 = _run1(module, Interpreter1)
    code2, instret2 = benchmark.pedantic(
        lambda: _run1(cmod, Interpreter2), rounds=3, iterations=1
    )

    print()
    print(render_table(
        "S1b: execution equivalence (8q, full search)",
        ["representation", "exit", "operators"],
        [
            ("uncompressed / interp1", code1, instret1),
            ("compressed / interp2", code2, instret2),
        ],
    ))
    assert code1 == code2 == 0
    # Compression is a re-coding: the executed operator stream is
    # identical.
    assert instret1 == instret2


def test_compiled_engine_speedup(benchmark, scale):
    """S1c — the direct-threaded engine's gate: at least 2x faster than
    the reference ``interpNT`` transliteration on the same compressed
    form, with identical executed-operator counts.

    Both engines are timed in this same process (best of three each) so
    the ratio is insulated from machine-to-machine absolute speed.
    """
    module = corpus(scale)["8q"]
    grammar, _ = trained(("gcc",), scale=scale)
    cmod = Compressor(grammar).compress_module(module)

    def best_of(executor_cls, rounds=3):
        best = float("inf")
        for _ in range(rounds):
            t0 = time.perf_counter()
            code, instret = _run1(cmod, executor_cls)
            best = min(best, time.perf_counter() - t0)
        return best, code, instret

    ref_s, ref_code, ref_instret = best_of(Interpreter2)
    eng_s, eng_code, eng_instret = None, None, None

    def timed():
        return _run1(cmod, CompiledEngine)

    eng_code, eng_instret = benchmark.pedantic(
        timed, rounds=3, iterations=1
    )
    eng_s = benchmark.stats.stats.min
    machine = Machine(cmod, CompiledEngine(cmod))
    machine.run()

    speedup = ref_s / eng_s
    print()
    print(render_table(
        "S1c: direct-threaded engine vs reference (8q, full search)",
        ["engine", "exit", "operators", "best (s)"],
        [
            ("reference / interp2", ref_code, ref_instret,
             f"{ref_s:.3f}"),
            ("compiled / direct-threaded", eng_code, eng_instret,
             f"{eng_s:.3f}"),
        ],
    ))
    print(f"S1c: speedup {speedup:.2f}x "
          f"({machine.dispatches} rule dispatches)")
    assert eng_code == ref_code == 0
    assert eng_instret == ref_instret
    assert machine.dispatches > 0
    # The gate: the flattened tables must buy at least 2x.
    assert speedup >= 2.0, f"compiled engine only {speedup:.2f}x faster"
