"""S1 — interpretation speed (Sections 1 and 4).

The paper's design target is *zero-overhead decompression*: the compressed
form is interpreted directly, trading some dispatch work (a rule-walking
level between the fetch loop and the operator switch) for ROM savings —
acceptable where "events are so infrequent as to render moot the
traditional objections to direct interpretation".

This bench executes the same program (eight queens, full 92-solution
search) from both representations and reports wall time plus executed
operator counts.  Shape to reproduce: identical operator counts (the
compressed form re-codes, it does not re-optimize) and a modest constant
dispatch overhead for compressed execution.

(Per the reproduction bands: this is the least faithful experiment — both
interpreters are Python, not C, so only the *relative* overhead carries
meaning.)
"""

from repro.compress.compressor import Compressor
from repro.experiments import corpus, render_table, trained
from repro.interp.interp1 import Interpreter1
from repro.interp.interp2 import Interpreter2
from repro.interp.runtime import Machine


def _run1(module, executor_cls):
    machine = Machine(module, executor_cls(module))
    code = machine.run()
    return code, machine.instret


def test_uncompressed_speed(benchmark, scale):
    module = corpus(scale)["8q"]
    code, instret = benchmark.pedantic(
        lambda: _run1(module, Interpreter1), rounds=3, iterations=1
    )
    assert code == 0
    print(f"\nS1a: uncompressed run: {instret} operators executed")


def test_compressed_speed(benchmark, scale):
    module = corpus(scale)["8q"]
    grammar, _ = trained(("gcc",), scale=scale)
    cmod = Compressor(grammar).compress_module(module)

    code1, instret1 = _run1(module, Interpreter1)
    code2, instret2 = benchmark.pedantic(
        lambda: _run1(cmod, Interpreter2), rounds=3, iterations=1
    )

    print()
    print(render_table(
        "S1b: execution equivalence (8q, full search)",
        ["representation", "exit", "operators"],
        [
            ("uncompressed / interp1", code1, instret1),
            ("compressed / interp2", code2, instret2),
        ],
    ))
    assert code1 == code2 == 0
    # Compression is a re-coding: the executed operator stream is
    # identical.
    assert instret1 == instret2
