"""S1 — interpretation speed (Sections 1 and 4).

The paper's design target is *zero-overhead decompression*: the compressed
form is interpreted directly, trading some dispatch work (a rule-walking
level between the fetch loop and the operator switch) for ROM savings —
acceptable where "events are so infrequent as to render moot the
traditional objections to direct interpretation".

This bench executes the same program (eight queens, full 92-solution
search) from both representations and reports wall time plus executed
operator counts.  Shape to reproduce: identical operator counts (the
compressed form re-codes, it does not re-optimize) and a modest constant
dispatch overhead for compressed execution.

(Per the reproduction bands: this is the least faithful experiment — both
interpreters are Python, not C, so only the *relative* overhead carries
meaning.)
"""

import time

import pytest

from repro.compress.compressor import Compressor
from repro.experiments import corpus, render_table, trained
from repro.interp.compiled import CompiledEngine
from repro.interp.interp1 import Interpreter1
from repro.interp.interp2 import Interpreter2
from repro.interp.native import NativeEngine, native_available
from repro.interp.runtime import Machine

#: Executed-operator count for eight queens (full 92-solution search).
#: A property of the *program*, not of any engine or trained grammar —
#: pinned absolutely so a silent semantic change in one engine can't
#: hide inside a "still N× faster" pass.
EIGHT_QUEENS_INSTRET = 684_685


def _run1(module, executor_cls):
    machine = Machine(module, executor_cls(module))
    code = machine.run()
    return code, machine.instret


def test_uncompressed_speed(benchmark, scale):
    module = corpus(scale)["8q"]
    code, instret = benchmark.pedantic(
        lambda: _run1(module, Interpreter1), rounds=3, iterations=1
    )
    assert code == 0
    assert instret == EIGHT_QUEENS_INSTRET
    print(f"\nS1a: uncompressed run: {instret} operators executed")


def test_compressed_speed(benchmark, scale):
    module = corpus(scale)["8q"]
    grammar, _ = trained(("gcc",), scale=scale)
    cmod = Compressor(grammar).compress_module(module)

    code1, instret1 = _run1(module, Interpreter1)
    code2, instret2 = benchmark.pedantic(
        lambda: _run1(cmod, Interpreter2), rounds=3, iterations=1
    )

    print()
    print(render_table(
        "S1b: execution equivalence (8q, full search)",
        ["representation", "exit", "operators"],
        [
            ("uncompressed / interp1", code1, instret1),
            ("compressed / interp2", code2, instret2),
        ],
    ))
    assert code1 == code2 == 0
    # Compression is a re-coding: the executed operator stream is
    # identical.
    assert instret1 == instret2 == EIGHT_QUEENS_INSTRET


def test_compiled_engine_speedup(benchmark, scale):
    """S1c — the direct-threaded engine's gate: at least 2x faster than
    the reference ``interpNT`` transliteration on the same compressed
    form, with identical executed-operator counts.

    Both engines are timed in this same process (best of three each) so
    the ratio is insulated from machine-to-machine absolute speed.
    """
    module = corpus(scale)["8q"]
    grammar, _ = trained(("gcc",), scale=scale)
    cmod = Compressor(grammar).compress_module(module)

    def best_of(executor_cls, rounds=3):
        best = float("inf")
        for _ in range(rounds):
            t0 = time.perf_counter()
            code, instret = _run1(cmod, executor_cls)
            best = min(best, time.perf_counter() - t0)
        return best, code, instret

    ref_s, ref_code, ref_instret = best_of(Interpreter2)
    eng_s, eng_code, eng_instret = None, None, None

    def timed():
        return _run1(cmod, CompiledEngine)

    eng_code, eng_instret = benchmark.pedantic(
        timed, rounds=3, iterations=1
    )
    eng_s = benchmark.stats.stats.min
    machine = Machine(cmod, CompiledEngine(cmod))
    machine.run()

    speedup = ref_s / eng_s
    print()
    print(render_table(
        "S1c: direct-threaded engine vs reference (8q, full search)",
        ["engine", "exit", "operators", "best (s)"],
        [
            ("reference / interp2", ref_code, ref_instret,
             f"{ref_s:.3f}"),
            ("compiled / direct-threaded", eng_code, eng_instret,
             f"{eng_s:.3f}"),
        ],
    ))
    print(f"S1c: speedup {speedup:.2f}x "
          f"({machine.dispatches} rule dispatches)")
    assert eng_code == ref_code == 0
    assert eng_instret == ref_instret == EIGHT_QUEENS_INSTRET
    assert machine.dispatches > 0
    # The gate: the flattened tables must buy at least 2x.
    assert speedup >= 2.0, f"compiled engine only {speedup:.2f}x faster"


@pytest.mark.skipif(not native_available(),
                    reason="no C compiler on PATH: native engine "
                           "unavailable")
def test_native_engine_speedup(benchmark, scale):
    """S1d — the native engine's gate: at least 10x faster than the
    direct-threaded Python engine on the same compressed form, with the
    pinned operator count and identical rule-dispatch count.

    The one-time C compile (amortised by the build cache) happens before
    timing starts: the gate measures execution, not toolchain latency.
    """
    module = corpus(scale)["8q"]
    grammar, _ = trained(("gcc",), scale=scale)
    cmod = Compressor(grammar).compress_module(module)

    def best_of_py(rounds=3):
        best = float("inf")
        code = instret = dispatches = None
        for _ in range(rounds):
            machine = Machine(cmod, CompiledEngine(cmod))
            t0 = time.perf_counter()
            code = machine.run()
            best = min(best, time.perf_counter() - t0)
            instret, dispatches = machine.instret, machine.dispatches
        return best, code, instret, dispatches

    py_s, py_code, py_instret, py_dispatches = best_of_py()
    engine = NativeEngine(cmod)  # builds (or cache-hits) the .so here

    result = benchmark.pedantic(engine.run, rounds=3, iterations=1)
    nat_s = benchmark.stats.stats.min

    speedup = py_s / nat_s
    print()
    print(render_table(
        "S1d: native engine vs direct-threaded Python (8q, full search)",
        ["engine", "exit", "operators", "best (s)"],
        [
            ("compiled / direct-threaded", py_code, py_instret,
             f"{py_s:.3f}"),
            ("native / generated C", result.code, result.instret,
             f"{nat_s:.4f}"),
        ],
    ))
    print(f"S1d: speedup {speedup:.1f}x")
    assert result.code == py_code == 0
    assert result.instret == py_instret == EIGHT_QUEENS_INSTRET
    assert result.dispatches == py_dispatches
    # The gate: compiling the grammar to C must buy at least 10x.
    assert speedup >= 10.0, f"native engine only {speedup:.2f}x faster"


@pytest.mark.skipif(not native_available(),
                    reason="no C compiler on PATH: native engine "
                           "unavailable")
def test_sandboxed_native_speedup(benchmark, scale):
    """S1e — crash isolation may not eat the native win: the same run
    through a warm, pooled sandbox helper (one pipe round-trip per
    request, engine cached helper-side) must still be at least 10x the
    direct-threaded Python engine.

    The helper spawn and the one-time engine build happen in a warm-up
    run before timing starts: the gate measures the steady state a
    service worker actually lives in.
    """
    from repro.interp.sandbox import NativeSandbox
    from repro.storage import save_compressed

    module = corpus(scale)["8q"]
    grammar, _ = trained(("gcc",), scale=scale)
    cmod = Compressor(grammar).compress_module(module)
    container = save_compressed(cmod)

    def best_of_py(rounds=3):
        best = float("inf")
        code = dispatches = None
        for _ in range(rounds):
            machine = Machine(cmod, CompiledEngine(cmod))
            t0 = time.perf_counter()
            code = machine.run()
            best = min(best, time.perf_counter() - t0)
            dispatches = machine.dispatches
        return best, code, dispatches

    py_s, py_code, py_dispatches = best_of_py()
    with NativeSandbox(timeout=120.0) as sandbox:
        warm = sandbox.run(container)  # spawn + build, outside timing
        assert warm.instret == EIGHT_QUEENS_INSTRET

        result = benchmark.pedantic(
            lambda: sandbox.run(container), rounds=3, iterations=1)
        sb_s = benchmark.stats.stats.min
        # pooled: the whole timed phase reused the one warm helper
        assert sandbox.stats["spawns"] == 1
        assert sandbox.stats["crashes"] == sandbox.stats["hangs"] == 0

    speedup = py_s / sb_s
    print(f"\nS1e: sandboxed native vs direct-threaded Python: "
          f"{py_s:.3f}s -> {sb_s:.4f}s (speedup {speedup:.1f}x)")
    assert result.code == py_code == 0
    assert result.instret == EIGHT_QUEENS_INSTRET
    assert result.dispatches == py_dispatches
    # The gate: isolation overhead (pickle + pipe) must leave at least
    # 10x of the native engine's win intact.
    assert speedup >= 10.0, \
        f"sandboxed native only {speedup:.2f}x faster"
