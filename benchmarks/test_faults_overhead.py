"""R1 — the fault plane's inert cost must be unmeasurable.

Every injection site is guarded by ``faults.ACTIVE is not None`` (one
module-attribute load and a ``None`` test), and the engine's site sits
at *activation* granularity, outside the hot dispatch loop.  This bench
runs the same compressed program with the plane absent and asserts the
wall-time ratio stays within noise — the robustness layer may not tax
the steady state it protects.

(The comparison baseline is the engine's own run-to-run jitter: best of
five against best of five on identical code.  A true guard-cost signal
would show up as a systematic slowdown far above that jitter.)
"""

import time

from repro import faults
from repro.compress.compressor import Compressor
from repro.experiments import corpus, trained
from repro.interp.compiled import CompiledEngine
from repro.interp.runtime import Machine


def _best_of(cmod, rounds=5):
    best = float("inf")
    for _ in range(rounds):
        machine = Machine(cmod, CompiledEngine(cmod))
        t0 = time.perf_counter()
        code = machine.run()
        best = min(best, time.perf_counter() - t0)
        assert code == 0
    return best


def test_inert_plane_overhead(scale):
    assert faults.ACTIVE is None  # the production state
    module = corpus(scale)["8q"]
    grammar, _ = trained(("gcc",), scale=scale)
    cmod = Compressor(grammar).compress_module(module)

    # interleave the measurement pairs so drift hits both sides alike
    baseline = min(_best_of(cmod), _best_of(cmod))
    again = min(_best_of(cmod), _best_of(cmod))

    ratio = max(baseline, again) / min(baseline, again)
    print(f"\nR1: inert fault plane: {baseline:.3f}s vs {again:.3f}s "
          f"(ratio {ratio:.3f})")
    # Identical code both times: this calibrates noise, and documents
    # that the guarded build *is* the only build — there is no
    # plane-free variant to diverge from.
    assert ratio < 1.25


def test_active_plane_off_site_cost(scale):
    """Even an *active* plane with no armed engine sites must not tax
    the engine: ``decide`` is only consulted when the guard sees a
    plane, and an unarmed site returns before taking the lock."""
    module = corpus(scale)["8q"]
    grammar, _ = trained(("gcc",), scale=scale)
    cmod = Compressor(grammar).compress_module(module)

    inert = _best_of(cmod)
    with faults.injected({"seed": 0, "sites": {
            "registry.atomic.torn": {"p": 1.0}}}):
        armed_elsewhere = _best_of(cmod)

    ratio = armed_elsewhere / inert
    print(f"\nR1b: plane active, engine sites unarmed: "
          f"{inert:.3f}s -> {armed_elsewhere:.3f}s (ratio {ratio:.3f})")
    assert ratio < 1.35  # site checks exist but stay off the hot loop


def _best_of_budget(cmod, budget, rounds=5):
    best = float("inf")
    for _ in range(rounds):
        machine = Machine(cmod, CompiledEngine(cmod), budget=budget)
        t0 = time.perf_counter()
        code = machine.run()
        best = min(best, time.perf_counter() - t0)
        assert code == 0
    return best


def test_budget_watchdog_inert_cost(scale):
    """R1c — the dispatch-budget guard must be as free as the fault
    plane: an armed-but-unreachable budget runs the identical dispatch
    loop with one extra integer compare per rule dispatch, and that may
    not show above run-to-run jitter against ``budget=0``."""
    module = corpus(scale)["8q"]
    grammar, _ = trained(("gcc",), scale=scale)
    cmod = Compressor(grammar).compress_module(module)

    # interleave the pairs so thermal/load drift hits both sides alike
    unlimited = min(_best_of_budget(cmod, 0), _best_of_budget(cmod, 0))
    capped = min(_best_of_budget(cmod, 10 ** 15),
                 _best_of_budget(cmod, 10 ** 15))

    ratio = capped / unlimited
    print(f"\nR1c: budget watchdog armed-but-idle: {unlimited:.3f}s -> "
          f"{capped:.3f}s (ratio {ratio:.3f})")
    assert ratio < 1.35
