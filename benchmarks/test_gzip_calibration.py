"""E4 — gzip calibration (Section 6 prose).

Paper: "gzip compresses the inputs above to 31-44% of their original
size, with the larger inputs naturally getting the better ratios.  Any
comparison, of course, unfairly favors gzip, which is not constrained to
support direct interpretation or random access."

Shape to reproduce: DEFLATE lands in the same band as the grammar method
on whole streams; forcing gzip to respect branch targets (compressing per
basic block) destroys it — quantifying the constraint the grammar method
operates under.
"""

from repro.baselines.gzipref import gzip_size
from repro.experiments import corpus, gzip_rows, pct, render_table


def test_gzip_calibration(benchmark, scale):
    rows = gzip_rows(scale)

    module = corpus(scale)["gcc"]
    benchmark.pedantic(lambda: gzip_size(module), rounds=5, iterations=1)

    print()
    print(render_table(
        "E4: gzip calibration (paper band: 31-44%)",
        ["input", "original", "gzip", "ratio", "gzip/block", "ours",
         "ratio"],
        [
            (r.input, r.original, r.gzip_bytes, pct(r.gzip_ratio),
             r.gzip_blocked, r.ours_bytes, pct(r.ours_ratio))
            for r in rows
        ],
    ))

    for r in rows:
        # gzip compresses every input...
        assert r.gzip_ratio < 1.0
        # ...but block-constrained gzip is far worse than whole-stream
        # gzip — the addressability tax the grammar method pays by design.
        assert r.gzip_blocked > r.gzip_bytes
    # Larger inputs get the better gzip ratios (the paper's observation).
    by_name = {r.input: r for r in rows}
    assert by_name["gcc"].gzip_ratio < by_name["8q"].gzip_ratio
    # On the big input, the grammar method is competitive with
    # unconstrained DEFLATE (within 2x either way).
    big = by_name["gcc"]
    assert big.ours_bytes < 2 * big.gzip_bytes
