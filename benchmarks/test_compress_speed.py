"""S2 — compression throughput gates for the GrammarProgram refactor.

Every grammar consumer runs off one precompiled
:class:`~repro.core.program.GrammarProgram` (codeword tables, flat
fragment matchers with subtree-size pruning, FIRST-set predict pruning
in the Earley search).  The refactor's contract is *bit-identical output,
materially faster*: these benches compress the 8q module with the live
paths and with the frozen pre-refactor oracle paths
(:mod:`repro.compress.oracle`) in the same process, assert byte
equality, and gate the speedup at >=1.5x — alongside the existing >=2x
S1c engine gate, which must keep passing.

The derivation cache is disabled on both sides: it is output-transparent
and orthogonal to the refactor, and a warm cache would measure the cache
instead of the compressor.
"""

import time

from repro.compress.compressor import Compressor
from repro.compress.oracle import oracle_compress_module
from repro.experiments import corpus, render_table, trained

GATE = 1.5


def _codes(cmod):
    return [p.code for p in cmod.procedures]


def _best_of(fn, rounds=3):
    best = float("inf")
    out = None
    for _ in range(rounds):
        t0 = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - t0)
    return best, out


def test_tiling_compression_speedup(benchmark, scale):
    """S2a — the production (tiling) compressor vs the pre-refactor
    tiler, byte-identical and at least 1.5x faster."""
    module = corpus(scale)["8q"]
    grammar, _ = trained(("gcc",), scale=scale)

    oracle_s, oracle_cmod = _best_of(
        lambda: oracle_compress_module(grammar, module))

    new_cmod = benchmark.pedantic(
        lambda: Compressor(grammar, cache_size=0).compress_module(module),
        rounds=3, iterations=1,
    )
    new_s = benchmark.stats.stats.min

    assert _codes(new_cmod) == _codes(oracle_cmod)
    speedup = oracle_s / new_s
    print()
    print(render_table(
        "S2a: tiling compression, program-backed vs pre-refactor (8q)",
        ["path", "bytes", "best (s)"],
        [
            ("oracle (pre-refactor)", oracle_cmod.code_bytes,
             f"{oracle_s:.4f}"),
            ("GrammarProgram-backed", new_cmod.code_bytes,
             f"{new_s:.4f}"),
        ],
    ))
    print(f"S2a: speedup {speedup:.2f}x (gate {GATE}x)")
    assert speedup >= GATE, \
        f"tiling compression only {speedup:.2f}x faster"


def test_earley_compression_speedup(benchmark, scale):
    """S2b — the Earley reference engine with FIRST-set predict pruning
    vs the unpruned pre-refactor search, byte-identical and at least
    1.5x faster.  Single round per side: the oracle path takes seconds
    per run and the pruning speedup is far from the gate."""
    module = corpus(scale)["8q"]
    grammar, _ = trained(("gcc",), scale=scale)

    oracle_s, oracle_cmod = _best_of(
        lambda: oracle_compress_module(grammar, module, engine="earley"),
        rounds=1)

    new_cmod = benchmark.pedantic(
        lambda: Compressor(grammar, engine="earley",
                           cache_size=0).compress_module(module),
        rounds=1, iterations=1,
    )
    new_s = benchmark.stats.stats.min

    assert _codes(new_cmod) == _codes(oracle_cmod)
    speedup = oracle_s / new_s
    print()
    print(render_table(
        "S2b: Earley compression, FIRST-pruned vs unpruned (8q)",
        ["path", "bytes", "best (s)"],
        [
            ("oracle (unpruned)", oracle_cmod.code_bytes,
             f"{oracle_s:.3f}"),
            ("program-backed (pruned)", new_cmod.code_bytes,
             f"{new_s:.3f}"),
        ],
    ))
    print(f"S2b: speedup {speedup:.2f}x (gate {GATE}x)")
    assert speedup >= GATE, \
        f"earley compression only {speedup:.2f}x faster"
