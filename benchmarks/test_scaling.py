"""F1 — corpus-size scaling (figure-style series).

The paper's evaluation fixes its training corpora; this series sweeps the
training-corpus size and reports how compression and grammar size respond
— the curve behind Section 2's assumption that "the corpus is assumed to
represent statistically the populations of the programs to be coded".

Expected shape: held-out compression improves steeply at first, then
saturates as the 256-rule budget fills; the encoded grammar grows with the
corpus until the budget binds; training time grows roughly linearly in
corpus bytes (the incremental edge-count design).
"""

import time

from repro.compress.compressor import Compressor
from repro.corpus.synth import generate_program
from repro.experiments import pct, render_table
from repro.grammar.initial import initial_grammar
from repro.grammar.serialize import grammar_bytes
from repro.minic import compile_source
from repro.parsing.stackparser import build_forest
from repro.training.expander import expand_grammar

SIZES = (2, 6, 18, 54, 120)


def test_corpus_scaling(benchmark, scale):
    held_out = compile_source(generate_program(30, seed=1234))

    rows = []
    for count in SIZES:
        corpus = [compile_source(generate_program(count, seed=77))]
        grammar = initial_grammar()
        start = time.perf_counter()
        forest = build_forest(grammar, corpus)
        expand_grammar(grammar, forest)
        train_s = time.perf_counter() - start
        compressed = Compressor(grammar).compress_module(held_out)
        rows.append((
            count,
            corpus[0].code_bytes,
            f"{train_s:.2f}s",
            grammar.total_rules(),
            grammar_bytes(grammar, compact=True),
            compressed.code_bytes,
            pct(compressed.code_bytes / held_out.code_bytes),
        ))

    # Timed portion: training at the mid scale.
    def train_mid():
        grammar = initial_grammar()
        corpus = [compile_source(generate_program(18, seed=77))]
        expand_grammar(grammar, build_forest(grammar, corpus))
        return grammar
    benchmark.pedantic(train_mid, rounds=1, iterations=1)

    print()
    print(render_table(
        "F1: training-corpus scaling (held-out generated program, "
        f"{held_out.code_bytes} bytes)",
        ["functions", "corpus bytes", "train time", "rules",
         "grammar bytes", "held-out", "ratio"],
        rows,
    ))

    ratios = [row[5] for row in rows]
    # More training data never hurts held-out compression much...
    assert ratios[-1] <= ratios[0]
    # ...and the biggest corpus compresses the held-out input properly.
    assert ratios[-1] < held_out.code_bytes
