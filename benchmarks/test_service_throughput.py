"""S3 — multi-process service throughput (fleet scale-out).

The deployment story behind the paper is decompress-on-demand behind a
service; a single asyncio process pins one core the moment a CPU-bound
compress lands.  This bench measures *aggregate* compress throughput
through the fleet dispatcher at ``--workers 4`` versus ``--workers 1``
on the same corpus, per container format (rcx1/rcx2), and gates the
multi-core win at >=2x.

The workload spreads over four distinct grammars so grammar-affinity
routing distributes across all four workers (one grammar would pin one
worker by design).  Every response is also checked byte-identical
across fleet sizes — a throughput win that changes payloads is a loss.

The >=2x gate needs hardware parallelism and is skipped below 4 CPUs
(CI containers are often single-core); the correctness half always
runs.

Results belong in EXPERIMENTS.md (per-format rows).
"""

import os
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

import repro
from repro.corpus.synth import generate_program
from repro.minic import compile_source
from repro.service import FleetDispatcher, ServiceClient
from repro.storage import save_grammar, save_module

from tests.test_fleet import FleetHarness

GRAMMARS = 4          # distinct grammars -> affinity spreads the fleet
OPS_PER_FORMAT = 32   # compress calls per format per fleet size
CLIENT_THREADS = 8


@pytest.fixture(scope="module")
def workload():
    """Four small trained grammars and one module per grammar."""
    entries = []
    for i in range(GRAMMARS):
        app = compile_source(generate_program(3, seed=100 + i))
        corpus = [compile_source(generate_program(6, seed=200 + i + 10 * j))
                  for j in range(2)] + [app]
        grammar, _ = repro.train_grammar(corpus)
        entries.append({
            "tag": f"g{i}",
            "grammar_bytes": save_grammar(grammar),
            "module_bytes": save_module(app),
        })
    return entries


def _run_fleet(tmp_path, workload, workers, format):
    """Aggregate compress ops/s through a fleet of ``workers``."""
    h = FleetHarness(tmp_path, workers=workers)
    try:
        with h.client() as admin:
            for entry in workload:
                admin.put_grammar(entry["grammar_bytes"],
                                  tags=[entry["tag"]])
        jobs = [workload[i % GRAMMARS] for i in range(OPS_PER_FORMAT)]

        def one(entry):
            with h.client(timeout=60.0) as client:
                return entry["tag"], client.compress(
                    entry["module_bytes"], entry["tag"], format=format)

        with ThreadPoolExecutor(max_workers=CLIENT_THREADS) as pool:
            list(pool.map(one, jobs[:4]))  # warm every worker's caches
            start = time.perf_counter()
            results = list(pool.map(one, jobs))
            elapsed = time.perf_counter() - start
        return OPS_PER_FORMAT / elapsed, dict(results)
    finally:
        h.close()


def test_fleet_correctness_across_sizes(tmp_path_factory, workload):
    """Always-on half: fleet answers are identical at any worker count
    (and identical to the local pipeline, transitively via the fleet
    suite)."""
    _, single = _run_fleet(tmp_path_factory.mktemp("w1"),
                           workload, 1, "rcx1")
    _, multi = _run_fleet(tmp_path_factory.mktemp("w2"),
                          workload, 2, "rcx1")
    assert single == multi
    assert set(single) == {e["tag"] for e in workload}


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 4,
    reason="the >=2x multi-core gate needs >=4 CPUs "
           f"(this host has {os.cpu_count()})")
@pytest.mark.parametrize("format", ["rcx1", "rcx2"])
def test_fleet_throughput_gate(tmp_path_factory, workload, format):
    ops_1, payloads_1 = _run_fleet(
        tmp_path_factory.mktemp("one"), workload, 1, format)
    ops_4, payloads_4 = _run_fleet(
        tmp_path_factory.mktemp("four"), workload, 4, format)
    assert payloads_1 == payloads_4  # same bytes, only faster
    speedup = ops_4 / ops_1
    print(f"\nS3 [{format}]: workers=1 {ops_1:.1f} ops/s, "
          f"workers=4 {ops_4:.1f} ops/s, speedup {speedup:.2f}x")
    assert speedup >= 2.0, (
        f"{format}: fleet speedup {speedup:.2f}x below the 2x gate "
        f"({ops_1:.1f} -> {ops_4:.1f} ops/s)")
