"""E3 — the paper's second table (Section 6): whole-executable sizes.

Paper (for its lcc program, 199KB of bytecode):

    Uncompressed bytecode   292,039
    Compressed bytecode     161,386
    lcc-compiled x86        240,522

Each row counts everything but libraries: interpreter (where applicable),
bytecode, label and global tables, descriptors, trampolines, and program
data.  We run the comparison on our *largest* input (the gcc-like
program), which plays the paper's role of "program much bigger than the
interpreter" — the regime where the claim lives.

Shape to reproduce (the paper's two headline inequalities):

    compressed < uncompressed      (compression pays off end to end)
    compressed < native x86        (beats even the conventional binary)

The paper additionally found native < uncompressed; that ordering depends
on the interpreter being small relative to the program AND on lcc's x86
output being nearly as dense as the bytecode.  Our corpus is ~30x smaller
than the paper's, so we report that comparison without asserting it, plus
the measured break-even program size.
"""

from repro.experiments import PAPER_TABLE2, render_table, table2_rows


def test_table2(benchmark, scale):
    rows = benchmark.pedantic(
        lambda: table2_rows("gcc", scale), rounds=1, iterations=1
    )

    print()
    print(render_table(
        "E3: whole-executable bytes (largest program; paper used lcc)",
        ["representation", "bytes", "paper"],
        [
            (rows[0].representation, rows[0].bytes,
             PAPER_TABLE2["uncompressed"]),
            (rows[1].representation, rows[1].bytes,
             PAPER_TABLE2["compressed"]),
            (rows[2].representation, rows[2].bytes,
             PAPER_TABLE2["native"]),
        ],
    ))
    for row in rows:
        parts = ", ".join(f"{k}={v}" for k, v in row.breakdown.items())
        print(f"  {row.representation}: {parts}")

    unc, comp, native = rows
    interp_growth = comp.breakdown["interpreter"] - \
        unc.breakdown["interpreter"]
    bytecode_ratio = comp.breakdown["bytecode"] / unc.breakdown["bytecode"]
    breakeven = interp_growth / (1 - bytecode_ratio)
    print(f"  break-even program size: ~{breakeven:,.0f} bytecode bytes "
          f"(interpreter growth {interp_growth} / savings rate "
          f"{1 - bytecode_ratio:.0%})")

    # The paper's headline inequalities.
    assert comp.bytes < unc.bytes
    assert comp.bytes < native.bytes
    # Compressed bytecode itself is far smaller than native code.
    assert comp.breakdown["bytecode"] < native.breakdown["code"]
    # And the program is past break-even.
    assert unc.breakdown["bytecode"] > breakeven
