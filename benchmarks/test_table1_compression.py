"""E1 — the paper's first table (Section 6): compressed size and ratio of
four inputs under two training grammars.

Paper values (bytes; ratio on gcc-trained; ratio on lcc-trained):

    gcc   1,423,370   41%   33%
    lcc     199,497   29%   38%
    gzip     47,066   42%   41%
    8q          436   35%   32%

Shape to reproduce: every input compresses to well under its original
size; each training corpus compresses *itself* best; the tiny input (8q)
still compresses.  Absolute values differ (our corpus is ~100x smaller;
see DESIGN.md).
"""

from repro.compress.compressor import Compressor
from repro.experiments import (
    PAPER_TABLE1,
    corpus,
    pct,
    render_table,
    table1_rows,
    trained,
)


def test_table1(benchmark, scale):
    rows = table1_rows(scale)  # trains both grammars (cached)

    # Timed portion: compressing the lcc input under the gcc grammar —
    # the per-program cost a deployer pays.
    grammar, _ = trained(("gcc",), scale=scale)
    module = corpus(scale)["lcc"]
    compressor = Compressor(grammar)
    benchmark.pedantic(
        lambda: compressor.compress_module(module), rounds=3, iterations=1
    )

    print()
    print(render_table(
        "E1: compression (paper Section 6, first table)",
        ["input", "original", "on-gcc", "ratio", "on-lcc", "ratio",
         "paper-gcc", "paper-lcc"],
        [
            (r.input, r.original, r.gcc_bytes, pct(r.gcc_ratio),
             r.lcc_bytes, pct(r.lcc_ratio),
             pct(PAPER_TABLE1[r.input][1]), pct(PAPER_TABLE1[r.input][2]))
            for r in rows
        ],
    ))

    by_name = {r.input: r for r in rows}
    # Everything compresses.
    for r in rows:
        assert r.gcc_ratio < 1.0 and r.lcc_ratio < 1.0, r.input
    # Own-corpus training wins (the paper's "predictably, lcc and gcc each
    # compress somewhat better with their own grammar").
    assert by_name["gcc"].gcc_bytes < by_name["gcc"].lcc_bytes
    assert by_name["lcc"].lcc_bytes < by_name["lcc"].gcc_bytes
    # Large inputs land well inside the paper's headline band (<50%).
    assert by_name["gcc"].gcc_ratio < 0.5
    assert by_name["lcc"].lcc_ratio < 0.5
