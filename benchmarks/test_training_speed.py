"""S2 — training speed: incremental edge index vs naive recount.

The expander's inner loop asks "what is the most frequent edge?" once per
added rule.  The naive implementation answers by rescanning the whole
forest — O(forest) per iteration, the paper's literal greedy loop — while
the production :class:`~repro.training.edges.EdgeIndex` maintains counts
incrementally (O(degree) per contraction) under a lazy max-heap.  Both
pick identical edges at every step (the oracle tests pin this; this bench
re-checks it), so the only difference is time.

The gap widens with corpus size: naive is O(iterations × forest) total,
incremental is ~O(forest + iterations × degree).  The acceptance bar is a
≥3× speedup on the largest synthetic corpus; see EXPERIMENTS.md for
recorded numbers.
"""

from repro.experiments import render_table, training_speed_rows

SIZES = (18, 54, 120)


def test_training_speed(benchmark):
    rows = training_speed_rows(sizes=SIZES)

    print()
    print(render_table(
        "S2: training speed, naive recount vs incremental edge index",
        ["corpus bytes", "forest nodes", "iterations", "naive",
         "incremental", "speedup", "heap peak", "heap hit rate",
         "identical"],
        [(
            row.corpus_bytes,
            row.forest_nodes,
            row.iterations,
            f"{row.naive_seconds:.2f}s",
            f"{row.incremental_seconds:.2f}s",
            f"{row.speedup:.1f}x",
            row.heap_peak,
            f"{row.heap_hit_rate:.1%}",
            "yes" if row.identical else "NO",
        ) for row in rows],
    ))

    # Correctness first: the fast path must train the very same grammar.
    for row in rows:
        assert row.identical, "incremental and naive grammars diverged"

    # The acceptance bar: >= 3x on the largest corpus (the gap grows with
    # corpus size, so the largest row is the binding one).
    largest = rows[-1]
    assert largest.speedup >= 3.0, (
        f"incremental index only {largest.speedup:.1f}x faster than the "
        f"naive recount on the largest corpus"
    )
    # Asymptotically the gap grows with corpus size, but single-run wall
    # times on a loaded box are too noisy to assert monotonicity; just
    # require that the incremental index is never the slower one.
    for row in rows:
        assert row.speedup > 1.0, (
            f"incremental index slower than naive at {row.corpus_bytes} bytes"
        )

    # Timed portion for pytest-benchmark: incremental training, mid scale.
    from repro.grammar.initial import initial_grammar
    from repro.corpus.synth import generate_program
    from repro.minic import compile_source
    from repro.parsing.stackparser import build_forest
    from repro.training.expander import expand_grammar

    module = compile_source(generate_program(54, seed=77))

    def train_incremental():
        grammar = initial_grammar()
        forest = build_forest(grammar, [module])
        expand_grammar(grammar, forest)
        return grammar

    benchmark.pedantic(train_incremental, rounds=1, iterations=1)
