"""Shared benchmark configuration.

Benchmarks regenerate the paper's evaluation (Section 6).  Run with::

    pytest benchmarks/ --benchmark-only

Corpus scale: the paper's training inputs are megabytes of compiler
output; ours are tens of kilobytes (see DESIGN.md).  ``SCALE`` is the
generated-function count of the gcc-like input — raise it for closer
statistics, lower it for faster runs.
"""

import pytest

SCALE = 220


@pytest.fixture(scope="session")
def scale():
    return SCALE
