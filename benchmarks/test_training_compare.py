"""S4 — trainer strategies: greedy vs MR-RePair seeding vs hybrid.

One corpus (the gcc-like module), three trainers:

* ``greedy`` — the paper's profiled edge-contraction loop, unchanged;
* ``repair`` — MR-RePair maximal-repeat seeding only (no profiled
  refinement): how far repeats alone carry compression;
* ``hybrid`` — seeding into a tenth of the per-nonterminal rule
  budget, then greedy refinement over the remainder.

The acceptance gates (ISSUE 10): hybrid must meet or beat pure greedy's
compression ratio on at least 3 of the 4 corpus inputs, within 1.5x of
greedy's training wall time.  Measured rows are recorded in
EXPERIMENTS.md.
"""

from repro.experiments import (
    INPUT_ORDER,
    pct,
    render_table,
    trainer_compare_rows,
)


def test_trainer_compare(benchmark):
    rows = trainer_compare_rows(train_on=("gcc",))

    print()
    print(render_table(
        "S4: trainer strategies, trained on gcc-like",
        ["trainer", "rules", "seeded", "grammar bytes", "train",
         "seed", "refine"] + [f"{name} ratio" for name in INPUT_ORDER],
        [(
            row.strategy,
            row.rules,
            row.seed_rules,
            row.grammar_bytes,
            f"{row.train_seconds:.2f}s",
            f"{row.seed_seconds:.2f}s",
            f"{row.refine_seconds:.2f}s",
            *(pct(row.ratios[name]) for name in INPUT_ORDER),
        ) for row in rows],
    ))

    by_name = {row.strategy: row for row in rows}
    greedy, repair, hybrid = (by_name[n]
                              for n in ("greedy", "repair", "hybrid"))

    # Sanity: the seeding strategies actually seeded, and pure seeding
    # compresses the training input at all (ratio < 1).
    assert repair.seed_rules > 0 and hybrid.seed_rules > 0
    assert repair.ratios["gcc"] < 1.0

    # Gate 1: hybrid meets or beats greedy on >= 3 of the 4 inputs.
    wins = sum(hybrid.ratios[name] <= greedy.ratios[name]
               for name in INPUT_ORDER)
    detail = {n: (pct(hybrid.ratios[n]), pct(greedy.ratios[n]))
              for n in INPUT_ORDER}
    assert wins >= 3, (
        f"hybrid beats greedy on only {wins}/4 inputs "
        f"(hybrid, greedy): {detail}"
    )

    # Gate 2: the seeding phase is cheap — hybrid trains within 1.5x of
    # greedy's wall time.
    assert hybrid.train_seconds <= 1.5 * greedy.train_seconds, (
        f"hybrid took {hybrid.train_seconds:.2f}s vs greedy "
        f"{greedy.train_seconds:.2f}s (> 1.5x budget)"
    )

    # Timed portion for pytest-benchmark: one hybrid training run.
    from repro.experiments.harness import GCCLIKE_SCALE, corpus
    from repro.pipeline import train_grammar

    module = corpus(GCCLIKE_SCALE)["gcc"]

    def train_hybrid():
        grammar, _ = train_grammar([module], strategy="hybrid")
        return grammar

    benchmark.pedantic(train_hybrid, rounds=1, iterations=1)
