"""A4 — the optimizer experiment the paper could not run (Section 6).

Paper: "MSVC compiles lcc to 236,181 bytes without optimization but to
161,716 bytes when full space optimization is requested.  It would be
interesting to run our compressor on bytecodes that have been through such
an optimizer, but this experiment requires obtaining a suitable bytecode
representation from MSVC, which is currently impossible.  Highly optimized
code is usually less regular and thus less compressible, but it appears
likely that the combination of an ambitious optimizer with bytecode
compression would yield a smaller result than either tool in isolation."

We *can* run it: `repro.opt` is a real optimizer over the bytecode.
Shapes to confirm the prediction: optimizer alone shrinks the input;
optimizer + compression yields the smallest absolute result; and the
optimized input's compression *ratio* is no better (less regularity).
"""

from repro.compress.compressor import Compressor
from repro.corpus import compiled_corpus
from repro.experiments import pct, render_table
from repro.grammar.initial import initial_grammar
from repro.opt import optimize_module
from repro.parsing.stackparser import build_forest
from repro.training.expander import expand_grammar


def test_optimizer_plus_compression(benchmark, scale):
    module = compiled_corpus(scale)["gcc"]
    optimized, stats = benchmark.pedantic(
        lambda: optimize_module(module), rounds=1, iterations=1
    )

    # Train separately on each form (each deployment trains on what it
    # ships).
    g_plain = initial_grammar()
    expand_grammar(g_plain, build_forest(g_plain, [module]))
    g_opt = initial_grammar()
    expand_grammar(g_opt, build_forest(g_opt, [optimized]))

    plain_c = Compressor(g_plain).compress_module(module).code_bytes
    opt_c = Compressor(g_opt).compress_module(optimized).code_bytes

    print()
    print(render_table(
        "A4: optimization x compression (gcc-like input)",
        ["pipeline", "bytes", "ratio of raw"],
        [
            ("raw bytecode", module.code_bytes, "100%"),
            ("optimized", optimized.code_bytes,
             pct(optimized.code_bytes / module.code_bytes)),
            ("compressed", plain_c, pct(plain_c / module.code_bytes)),
            ("optimized + compressed", opt_c,
             pct(opt_c / module.code_bytes)),
        ],
    ))
    print(f"  (optimizer: {stats.folded} folds, {stats.identities} "
          f"identities, {stats.branches_folded} branches, "
          f"{stats.statements_removed} dead statements)")
    opt_ratio = opt_c / optimized.code_bytes
    plain_ratio = plain_c / module.code_bytes
    print(f"  compression ratio: raw {pct(plain_ratio)}, "
          f"optimized {pct(opt_ratio)}")

    # The optimizer alone helps.
    assert optimized.code_bytes < module.code_bytes
    # The paper's prediction: the combination beats either tool alone.
    assert opt_c <= plain_c
    assert opt_c < optimized.code_bytes
    # The "less regular, less compressible" intuition is a second-order
    # effect: at our optimizer's strength the ratio barely moves (our
    # folding substitutes uniform literals, which can even help).  Assert
    # only that it stays in the same band.
    assert abs(opt_ratio - plain_ratio) < 0.05
