"""A5 — entropy-coded derivation streams (RCX2) vs byte-per-step RCX1.

The paper's coding spends a flat byte per derivation step; the training
forest says rule usage is heavily skewed, and the RCX2 container spends
bits proportional to that skew instead.  Gates:

* the coded stream is strictly smaller than the RCX1 payload on *every*
  corpus program (train-on-gcc configuration, the paper's Table 1 lead
  column);
* the mean payload reduction is at least 15%;
* the stream decodes losslessly (byte-identical RCX1 bodies and block
  starts) — the exhaustive equivalence/fuzz coverage lives in tests/.

The printed table puts the coded payload next to the classical
baselines (Huffman, Tunstall, gzip), and the decode-throughput line
answers "what does loading an RCX2 file cost".
"""

import time

from repro.baselines.gzipref import gzip_size, split_blocks
from repro.baselines.huffman import compressed_size as huffman_size
from repro.baselines.tunstall import build_code as build_tunstall
from repro.baselines.tunstall import compressed_size_blocks
from repro.coding.model import model_for
from repro.coding.stream import (
    decode_module_streams,
    encode_module_streams,
)
from repro.compress.compressor import Compressor
from repro.core.program import program_for
from repro.experiments import corpus, render_table, trained
from repro.experiments.harness import INPUT_ORDER


def test_coding_ratio(benchmark, scale):
    grammar, _ = trained(("gcc",), scale=scale)
    program = program_for(grammar)
    model = model_for(program)
    compressor = Compressor(grammar)

    sizes = {}
    for name in INPUT_ORDER:
        module = corpus(scale)[name]
        cmod = compressor.compress_module(module)
        codes = [p.code for p in cmod.procedures]
        coded = encode_module_streams(program, model, codes)
        decoded = decode_module_streams(
            program, model, [len(c) for c in codes], coded)
        assert [c for c, _ in decoded] == codes, f"{name}: lossy decode"
        assert [s for _, s in decoded] == \
            [tuple(p.block_starts) for p in cmod.procedures], name
        sizes[name] = (module.code_bytes, cmod.code_bytes, len(coded))

    # Decode throughput, measured on the largest payload.
    biggest = max(INPUT_ORDER, key=lambda n: sizes[n][1])
    cmod = compressor.compress_module(corpus(scale)[biggest])
    codes = [p.code for p in cmod.procedures]
    lens = [len(c) for c in codes]
    coded = encode_module_streams(program, model, codes)
    benchmark.pedantic(
        lambda: decode_module_streams(program, model, lens, coded),
        rounds=3, iterations=1)
    start = time.perf_counter()
    decode_module_streams(program, model, lens, coded)
    seconds = time.perf_counter() - start

    # Classical baselines for context (same shapes as A3).
    train_module = corpus(scale)["gcc"]
    train_blocks = [b for p in train_module.procedures
                    for b in split_blocks(p.code)]
    tunstall = build_tunstall(train_blocks, 8)

    rows = []
    for name, (original, rcx1, rcx2) in sizes.items():
        module = corpus(scale)[name]
        blocks = [b for p in module.procedures
                  for b in split_blocks(p.code)]
        rows.append((
            name, original, rcx1, rcx2, f"{1 - rcx2 / rcx1:.1%}",
            huffman_size(module.concatenated_code()),
            compressed_size_blocks(tunstall, blocks),
            gzip_size(module),
        ))
    print()
    print(render_table(
        "A5: entropy-coded payloads (bytes; trained on gcc)",
        ["input", "original", "rcx1", "rcx2", "saved",
         "huffman", "tunstall", "gzip"],
        rows,
    ))
    print(f"rcx2 decode throughput: {sum(lens) / seconds / 1e6:.2f} MB "
          f"of decoded payload/s ({biggest}: {sum(lens)} bytes in "
          f"{seconds * 1e3:.1f} ms)")

    reductions = []
    for name, (_, rcx1, rcx2) in sizes.items():
        assert rcx2 < rcx1, \
            f"{name}: rcx2 coded {rcx2} not smaller than rcx1 {rcx1}"
        reductions.append(1 - rcx2 / rcx1)
    mean = sum(reductions) / len(reductions)
    assert mean >= 0.15, f"mean payload reduction {mean:.1%} < 15%"
